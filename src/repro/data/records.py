"""TFRecord-style binary record files.

TensorFlow trains from *TFRecords* -- framed, checksummed byte records --
and the paper's key pipeline optimisation (Section III-B1) is to binarise
the dataset into this format **offline, once**, instead of re-transforming
raw volumes every epoch.  This module reimplements the container:

frame layout (little-endian, identical to TFRecord):

    uint64  length
    uint32  masked_crc32(length bytes)
    bytes   payload[length]
    uint32  masked_crc32(payload)

TensorFlow uses CRC32-C (Castagnoli); without a hardware-accelerated
crc32c available offline this implementation uses ``zlib.crc32`` with the
same masking scheme -- byte-for-byte framing compatibility is not a goal,
corruption *detection* is.

On top of the framing, :func:`encode_example` / :func:`decode_example`
serialise a ``dict[str, ndarray]`` feature map (the tf.train.Example
analogue) with dtype/shape preserved.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = [
    "RecordWriter",
    "RecordReader",
    "RecordCorruptionError",
    "encode_example",
    "decode_example",
    "write_example_file",
    "read_example_file",
    "write_sharded_examples",
    "read_sharded_examples",
]

_MASK_DELTA = 0xA282EAD8


class RecordCorruptionError(ValueError):
    """A record frame failed its CRC check or was truncated."""


def _masked_crc(data: bytes) -> int:
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return (((crc >> 15) | (crc << 17)) + _MASK_DELTA) & 0xFFFFFFFF


class RecordWriter:
    """Append framed records to a file.  Usable as a context manager."""

    def __init__(self, path):
        self.path = Path(path)
        self._f = open(self.path, "wb")
        self._count = 0

    def write(self, payload: bytes) -> None:
        if self._f is None:
            raise RuntimeError("writer is closed")
        header = struct.pack("<Q", len(payload))
        self._f.write(header)
        self._f.write(struct.pack("<I", _masked_crc(header)))
        self._f.write(payload)
        self._f.write(struct.pack("<I", _masked_crc(payload)))
        self._count += 1

    @property
    def num_records(self) -> int:
        return self._count

    def close(self) -> None:
        if self._f is not None:
            self._f.close()
            self._f = None

    def __enter__(self) -> "RecordWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RecordReader:
    """Iterate framed records from a file, verifying CRCs."""

    def __init__(self, path, verify: bool = True):
        self.path = Path(path)
        self.verify = bool(verify)

    def __iter__(self) -> Iterator[bytes]:
        with open(self.path, "rb") as f:
            while True:
                header = f.read(8)
                if not header:
                    return
                if len(header) < 8:
                    raise RecordCorruptionError(
                        f"{self.path}: truncated length header"
                    )
                (length,) = struct.unpack("<Q", header)
                (hcrc,) = struct.unpack("<I", f.read(4))
                if self.verify and hcrc != _masked_crc(header):
                    raise RecordCorruptionError(
                        f"{self.path}: length CRC mismatch"
                    )
                payload = f.read(length)
                if len(payload) < length:
                    raise RecordCorruptionError(
                        f"{self.path}: truncated payload "
                        f"({len(payload)}/{length} bytes)"
                    )
                (pcrc,) = struct.unpack("<I", f.read(4))
                if self.verify and pcrc != _masked_crc(payload):
                    raise RecordCorruptionError(
                        f"{self.path}: payload CRC mismatch"
                    )
                yield payload

    def count(self) -> int:
        return sum(1 for _ in self)


# ---------------------------------------------------------------------------
# Example (feature-map) serialisation
# ---------------------------------------------------------------------------

def encode_example(features: dict[str, np.ndarray]) -> bytes:
    """Serialise a name -> ndarray map (the tf.train.Example analogue)."""
    parts = [struct.pack("<I", len(features))]
    for name in sorted(features):
        arr = np.asarray(features[name])
        if arr.ndim:  # ascontiguousarray would promote 0-d to 1-d
            arr = np.ascontiguousarray(arr)
        name_b = name.encode()
        dtype_b = arr.dtype.str.encode()  # e.g. b"<f4"
        raw = arr.tobytes()
        parts.append(struct.pack("<H", len(name_b)))
        parts.append(name_b)
        parts.append(struct.pack("<H", len(dtype_b)))
        parts.append(dtype_b)
        parts.append(struct.pack("<B", arr.ndim))
        parts.append(struct.pack(f"<{max(arr.ndim,1)}q", *(arr.shape or (0,))))
        parts.append(struct.pack("<Q", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def decode_example(payload: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`encode_example`."""
    out: dict[str, np.ndarray] = {}
    off = 0

    def take(fmt):
        nonlocal off
        vals = struct.unpack_from(fmt, payload, off)
        off += struct.calcsize(fmt)
        return vals

    (n,) = take("<I")
    for _ in range(n):
        (name_len,) = take("<H")
        name = payload[off : off + name_len].decode()
        off += name_len
        (dtype_len,) = take("<H")
        dtype = np.dtype(payload[off : off + dtype_len].decode())
        off += dtype_len
        (ndim,) = take("<B")
        shape = take(f"<{max(ndim,1)}q")
        shape = tuple(shape[:ndim])
        (nbytes,) = take("<Q")
        count = nbytes // dtype.itemsize
        arr = np.frombuffer(payload, dtype=dtype, count=count, offset=off)
        off += nbytes
        out[name] = arr.reshape(shape).copy()
    if off != len(payload):
        raise RecordCorruptionError(
            f"example payload has {len(payload) - off} trailing bytes"
        )
    return out


def write_example_file(path, examples) -> int:
    """Write an iterable of feature maps; returns the record count."""
    with RecordWriter(path) as w:
        for ex in examples:
            w.write(encode_example(ex))
        return w.num_records


def read_example_file(path) -> Iterator[dict[str, np.ndarray]]:
    """Yield feature maps from a record file."""
    for payload in RecordReader(path):
        yield decode_example(payload)


def write_sharded_examples(
    directory, examples, num_shards: int, prefix: str = "data"
) -> list[Path]:
    """Round-robin examples into ``num_shards`` record files.

    Sharding is what makes the paper's tf.data *interleave* useful: many
    files can be opened and read in parallel (Section III-B1 "reading
    the files for binarization can be parallelized using interleave
    functions").  Returns the shard paths, named
    ``{prefix}-00000-of-00004.rec`` TensorFlow-style.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = [
        directory / f"{prefix}-{i:05d}-of-{num_shards:05d}.rec"
        for i in range(num_shards)
    ]
    writers = [RecordWriter(p) for p in paths]
    try:
        for i, ex in enumerate(examples):
            writers[i % num_shards].write(encode_example(ex))
    finally:
        for w in writers:
            w.close()
    return paths


def read_sharded_examples(
    paths, cycle_length: int = 2
) -> "Iterator[dict[str, np.ndarray]]":
    """Interleaved read across shards via the tf.data-style pipeline."""
    from .dataset import Dataset

    ds = Dataset.from_list(list(paths)).interleave(
        lambda p: read_example_file(p), cycle_length=cycle_length
    )
    return iter(ds)
