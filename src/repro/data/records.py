"""TFRecord-style binary record files.

TensorFlow trains from *TFRecords* -- framed, checksummed byte records --
and the paper's key pipeline optimisation (Section III-B1) is to binarise
the dataset into this format **offline, once**, instead of re-transforming
raw volumes every epoch.  This module reimplements the container:

frame layout (little-endian, identical to TFRecord):

    uint64  length
    uint32  masked_crc32(length bytes)
    bytes   payload[length]
    uint32  masked_crc32(payload)

TensorFlow uses CRC32-C (Castagnoli); without a hardware-accelerated
crc32c available offline this implementation uses ``zlib.crc32`` with the
same masking scheme -- byte-for-byte framing compatibility is not a goal,
corruption *detection* is.

On top of the framing, :func:`encode_example` / :func:`decode_example`
serialise a ``dict[str, ndarray]`` feature map (the tf.train.Example
analogue) with dtype/shape preserved.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = [
    "RecordWriter",
    "RecordReader",
    "IndexedRecordReader",
    "RecordCorruptionError",
    "RecordIndexError",
    "encode_example",
    "decode_example",
    "index_path_for",
    "write_example_file",
    "read_example_file",
    "write_sharded_examples",
    "read_sharded_examples",
]

_MASK_DELTA = 0xA282EAD8

# Index sidecar: "<record file>.idx" holding fixed-size (offset, payload
# length) entries, giving O(1) random access without a decode-and-CRC
# scan of the record file.
INDEX_MAGIC = b"RIDX"
INDEX_VERSION = 1
_INDEX_HEADER = struct.Struct("<4sI")
_INDEX_ENTRY = struct.Struct("<QQ")


def index_path_for(path) -> Path:
    """The sidecar path of a record file (``train.rec`` -> ``train.rec.idx``)."""
    path = Path(path)
    return path.with_name(path.name + ".idx")


class RecordCorruptionError(ValueError):
    """A record frame failed its CRC check or was truncated."""


class RecordIndexError(RecordCorruptionError):
    """An index sidecar is missing, truncated, stale, or inconsistent
    with its record file.  A :class:`RecordCorruptionError` subclass so
    callers that already guard against corruption fall back the same
    way; random-access readers must *never* serve records through a bad
    index."""


def _masked_crc(data: bytes) -> int:
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return (((crc >> 15) | (crc << 17)) + _MASK_DELTA) & 0xFFFFFFFF


class RecordWriter:
    """Append framed records to a file.  Usable as a context manager.

    Unless ``index=False``, an index sidecar (``<path>.idx``) is written
    alongside: one ``(offset, payload length)`` entry per record, the
    handle :class:`IndexedRecordReader` uses for O(1) random access.
    The sidecar is closed *after* the record file so a complete pair
    always satisfies ``mtime(idx) >= mtime(rec)`` -- the staleness
    invariant readers check.
    """

    def __init__(self, path, index: bool = True):
        self.path = Path(path)
        self._f = open(self.path, "wb")
        self._count = 0
        self._idx = None
        if index:
            self._idx = open(index_path_for(self.path), "wb")
            self._idx.write(_INDEX_HEADER.pack(INDEX_MAGIC, INDEX_VERSION))

    def write(self, payload: bytes) -> None:
        if self._f is None:
            raise RuntimeError("writer is closed")
        offset = self._f.tell()
        header = struct.pack("<Q", len(payload))
        self._f.write(header)
        self._f.write(struct.pack("<I", _masked_crc(header)))
        self._f.write(payload)
        self._f.write(struct.pack("<I", _masked_crc(payload)))
        if self._idx is not None:
            self._idx.write(_INDEX_ENTRY.pack(offset, len(payload)))
        self._count += 1

    @property
    def num_records(self) -> int:
        return self._count

    def close(self) -> None:
        if self._f is not None:
            self._f.close()
            self._f = None
        if self._idx is not None:
            self._idx.close()
            self._idx = None

    def __enter__(self) -> "RecordWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RecordReader:
    """Iterate framed records from a file, verifying CRCs."""

    def __init__(self, path, verify: bool = True):
        self.path = Path(path)
        self.verify = bool(verify)

    def __iter__(self) -> Iterator[bytes]:
        with open(self.path, "rb") as f:
            while True:
                header = f.read(8)
                if not header:
                    return
                if len(header) < 8:
                    raise RecordCorruptionError(
                        f"{self.path}: truncated length header"
                    )
                (length,) = struct.unpack("<Q", header)
                (hcrc,) = struct.unpack("<I", f.read(4))
                if self.verify and hcrc != _masked_crc(header):
                    raise RecordCorruptionError(
                        f"{self.path}: length CRC mismatch"
                    )
                payload = f.read(length)
                if len(payload) < length:
                    raise RecordCorruptionError(
                        f"{self.path}: truncated payload "
                        f"({len(payload)}/{length} bytes)"
                    )
                (pcrc,) = struct.unpack("<I", f.read(4))
                if self.verify and pcrc != _masked_crc(payload):
                    raise RecordCorruptionError(
                        f"{self.path}: payload CRC mismatch"
                    )
                yield payload

    def count(self) -> int:
        """Number of records, answered from the index sidecar when a
        valid one is present (O(1)), else by a full verifying scan."""
        try:
            return len(IndexedRecordReader(self.path, verify=False))
        except (RecordIndexError, OSError):
            return sum(1 for _ in self)


class IndexedRecordReader:
    """O(1) random access into a record file via its ``.idx`` sidecar.

    The record file is mapped once (``np.memmap``); ``payload(i)`` is a
    zero-copy ``memoryview`` slice of the mapping and ``example(i)``
    decodes it into ndarray *views* over the mapped bytes -- no decode
    copy, the multi-process completion of the binarise-once argument.
    Pass ``zero_copy=False`` for writable (copied) arrays.

    The constructor validates the sidecar and raises
    :class:`RecordIndexError` (a :class:`RecordCorruptionError`) when it
    is missing, truncated, stale (record file modified after the index
    was written), or inconsistent with the record file's size -- a bad
    index must never silently serve wrong examples.
    """

    def __init__(self, path, verify: bool = True, zero_copy: bool = True):
        self.path = Path(path)
        self.index_path = index_path_for(self.path)
        self.verify = bool(verify)
        self.zero_copy = bool(zero_copy)
        if not self.index_path.exists():
            raise RecordIndexError(f"{self.path}: no index sidecar")
        try:
            rec_stat = os.stat(self.path)
        except FileNotFoundError:
            raise RecordIndexError(f"{self.path}: record file missing")
        idx_stat = os.stat(self.index_path)
        if rec_stat.st_mtime_ns > idx_stat.st_mtime_ns:
            raise RecordIndexError(
                f"{self.index_path}: stale index (record file is newer)"
            )
        raw = self.index_path.read_bytes()
        if len(raw) < _INDEX_HEADER.size:
            raise RecordIndexError(f"{self.index_path}: truncated header")
        magic, version = _INDEX_HEADER.unpack_from(raw, 0)
        if magic != INDEX_MAGIC or version != INDEX_VERSION:
            raise RecordIndexError(
                f"{self.index_path}: bad magic/version "
                f"({magic!r} v{version})"
            )
        body = len(raw) - _INDEX_HEADER.size
        if body % _INDEX_ENTRY.size:
            raise RecordIndexError(
                f"{self.index_path}: truncated entry "
                f"({body} bytes is not a multiple of {_INDEX_ENTRY.size})"
            )
        n = body // _INDEX_ENTRY.size
        entries = np.frombuffer(
            raw, dtype=np.uint64, offset=_INDEX_HEADER.size
        ).reshape(n, 2)
        self._offsets = entries[:, 0]
        self._lengths = entries[:, 1]
        # Consistency: frames must tile the record file exactly.  A
        # record file with extra frames (appended without the index) or
        # a truncated one both fail here instead of mis-serving.
        expect = 0
        for off, length in zip(self._offsets, self._lengths):
            if int(off) != expect:
                raise RecordIndexError(
                    f"{self.index_path}: offset {int(off)} does not "
                    f"abut previous frame (expected {expect})"
                )
            expect = int(off) + 16 + int(length)
        if expect != rec_stat.st_size:
            raise RecordIndexError(
                f"{self.index_path}: index covers {expect} bytes, record "
                f"file has {rec_stat.st_size} (count mismatch or "
                "truncation)"
            )
        self._mm = (
            np.memmap(self.path, dtype=np.uint8, mode="r")
            if rec_stat.st_size
            else np.empty(0, dtype=np.uint8)
        )

    def __len__(self) -> int:
        return len(self._offsets)

    def count(self) -> int:
        return len(self)

    def payload(self, i: int) -> memoryview:
        """Zero-copy view of record ``i``'s payload bytes (CRC-checked
        when ``verify``)."""
        n = len(self)
        if not -n <= i < n:
            raise IndexError(f"record index {i} out of range [0, {n})")
        if i < 0:
            i += n
        off, length = int(self._offsets[i]), int(self._lengths[i])
        frame = memoryview(self._mm)[off : off + 16 + length]
        if self.verify:
            header = bytes(frame[:8])
            (hcrc,) = struct.unpack_from("<I", frame, 8)
            if hcrc != _masked_crc(header):
                raise RecordCorruptionError(
                    f"{self.path}: length CRC mismatch at record {i}"
                )
            (pcrc,) = struct.unpack_from("<I", frame, 12 + length)
            if pcrc != _masked_crc(frame[12 : 12 + length]):
                raise RecordCorruptionError(
                    f"{self.path}: payload CRC mismatch at record {i}"
                )
        return frame[12 : 12 + length]

    def example(self, i: int) -> dict[str, np.ndarray]:
        """Record ``i`` decoded as a feature map.  With ``zero_copy``
        (the default) arrays are read-only views into the file mapping."""
        return decode_example(self.payload(i), copy=not self.zero_copy)

    def __iter__(self) -> Iterator[dict[str, np.ndarray]]:
        for i in range(len(self)):
            yield self.example(i)


# ---------------------------------------------------------------------------
# Example (feature-map) serialisation
# ---------------------------------------------------------------------------

def encode_example(features: dict[str, np.ndarray]) -> bytes:
    """Serialise a name -> ndarray map (the tf.train.Example analogue)."""
    parts = [struct.pack("<I", len(features))]
    for name in sorted(features):
        arr = np.asarray(features[name])
        if arr.ndim:  # ascontiguousarray would promote 0-d to 1-d
            arr = np.ascontiguousarray(arr)
        name_b = name.encode()
        dtype_b = arr.dtype.str.encode()  # e.g. b"<f4"
        raw = arr.tobytes()
        parts.append(struct.pack("<H", len(name_b)))
        parts.append(name_b)
        parts.append(struct.pack("<H", len(dtype_b)))
        parts.append(dtype_b)
        parts.append(struct.pack("<B", arr.ndim))
        parts.append(struct.pack(f"<{max(arr.ndim,1)}q", *(arr.shape or (0,))))
        parts.append(struct.pack("<Q", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def decode_example(payload, copy: bool = True) -> dict[str, np.ndarray]:
    """Inverse of :func:`encode_example`.

    ``payload`` is any buffer (bytes, memoryview, or a slice of an
    ``np.memmap``).  With ``copy=False`` the returned arrays are
    zero-copy (read-only) views over the buffer -- combined with
    :class:`IndexedRecordReader` that means decoding never materialises
    a second copy of the volume data.
    """
    mv = memoryview(payload)
    out: dict[str, np.ndarray] = {}
    off = 0

    def take(fmt):
        nonlocal off
        vals = struct.unpack_from(fmt, mv, off)
        off += struct.calcsize(fmt)
        return vals

    (n,) = take("<I")
    for _ in range(n):
        (name_len,) = take("<H")
        name = bytes(mv[off : off + name_len]).decode()
        off += name_len
        (dtype_len,) = take("<H")
        dtype = np.dtype(bytes(mv[off : off + dtype_len]).decode())
        off += dtype_len
        (ndim,) = take("<B")
        shape = take(f"<{max(ndim,1)}q")
        shape = tuple(shape[:ndim])
        (nbytes,) = take("<Q")
        count = nbytes // dtype.itemsize
        arr = np.frombuffer(mv, dtype=dtype, count=count, offset=off)
        off += nbytes
        out[name] = arr.reshape(shape)
        if copy:
            out[name] = out[name].copy()
    if off != len(mv):
        raise RecordCorruptionError(
            f"example payload has {len(mv) - off} trailing bytes"
        )
    return out


def write_example_file(path, examples) -> int:
    """Write an iterable of feature maps; returns the record count."""
    with RecordWriter(path) as w:
        for ex in examples:
            w.write(encode_example(ex))
        return w.num_records


def read_example_file(path) -> Iterator[dict[str, np.ndarray]]:
    """Yield feature maps from a record file."""
    for payload in RecordReader(path):
        yield decode_example(payload)


def write_sharded_examples(
    directory, examples, num_shards: int, prefix: str = "data"
) -> list[Path]:
    """Round-robin examples into ``num_shards`` record files.

    Sharding is what makes the paper's tf.data *interleave* useful: many
    files can be opened and read in parallel (Section III-B1 "reading
    the files for binarization can be parallelized using interleave
    functions").  Returns the shard paths, named
    ``{prefix}-00000-of-00004.rec`` TensorFlow-style.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = [
        directory / f"{prefix}-{i:05d}-of-{num_shards:05d}.rec"
        for i in range(num_shards)
    ]
    writers = [RecordWriter(p) for p in paths]
    try:
        for i, ex in enumerate(examples):
            writers[i % num_shards].write(encode_example(ex))
    finally:
        for w in writers:
            w.close()
    return paths


def read_sharded_examples(
    paths, cycle_length: int = 2
) -> "Iterator[dict[str, np.ndarray]]":
    """Interleaved read across shards via the tf.data-style pipeline."""
    from .dataset import Dataset

    ds = Dataset.from_list(list(paths)).interleave(
        lambda p: read_example_file(p), cycle_length=cycle_length
    )
    return iter(ds)
