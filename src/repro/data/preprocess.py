"""Pre-processing transforms of the paper's pipeline (Section IV-A).

The MSD volumes are ``240 x 240 x 155``; the paper (a) standardises the
voxel intensities per modality, (b) crops to ``240 x 240 x 152`` so the
three max-poolings divide evenly, (c) transposes to channels-first, and
(d) reduces the 4-class problem to binary whole-tumour-vs-background by
joining the three positive classes.
"""

from __future__ import annotations

import numpy as np

from .synthetic_brats import Subject

__all__ = [
    "standardize",
    "center_crop",
    "crop_to_divisible",
    "merge_labels_binary",
    "one_hot",
    "preprocess_subject",
    "TrainingExample",
]


def standardize(
    image: np.ndarray, mask: np.ndarray | None = None, eps: float = 1e-8
) -> np.ndarray:
    """Z-score each channel of a ``(C, D, H, W)`` volume.

    When ``mask`` is given, statistics are computed over masked voxels
    only (e.g. the brain region) but applied everywhere -- the standard
    MRI normalisation.
    """
    image = np.asarray(image, dtype=np.float32)
    if image.ndim != 4:
        raise ValueError(f"expected (C, D, H, W), got shape {image.shape}")
    out = np.empty_like(image)
    for c in range(image.shape[0]):
        vals = image[c][mask] if mask is not None else image[c]
        mu = float(vals.mean())
        sd = float(vals.std())
        out[c] = (image[c] - mu) / (sd + eps)
    return out


def center_crop(volume: np.ndarray, target: tuple[int, ...]) -> np.ndarray:
    """Crop the trailing ``len(target)`` axes to ``target``, centred.

    Mirrors the paper's 155 -> 152 slice crop; raises if any target dim
    exceeds the source dim.
    """
    volume = np.asarray(volume)
    spatial_ndim = len(target)
    src = volume.shape[-spatial_ndim:]
    slices = [slice(None)] * (volume.ndim - spatial_ndim)
    for s, t in zip(src, target):
        if t > s:
            raise ValueError(f"cannot crop axis of size {s} to {t}")
        start = (s - t) // 2
        slices.append(slice(start, start + t))
    return volume[tuple(slices)]


def crop_to_divisible(volume: np.ndarray, divisor: int) -> np.ndarray:
    """Centre-crop the three trailing axes to multiples of ``divisor``
    (155 with divisor 8 -> 152, reproducing the paper's choice)."""
    if divisor < 1:
        raise ValueError("divisor must be >= 1")
    spatial = volume.shape[-3:]
    target = tuple((s // divisor) * divisor for s in spatial)
    if any(t == 0 for t in target):
        raise ValueError(
            f"spatial dims {spatial} too small for divisor {divisor}"
        )
    return center_crop(volume, target)


def merge_labels_binary(label: np.ndarray) -> np.ndarray:
    """4-class -> binary: classes {1, 2, 3} become 1 (whole tumour)."""
    return (np.asarray(label) > 0).astype(np.float32)


def one_hot(label: np.ndarray, num_classes: int) -> np.ndarray:
    """``(D, H, W)`` integer map -> ``(num_classes, D, H, W)`` float."""
    label = np.asarray(label)
    if label.min() < 0 or label.max() >= num_classes:
        raise ValueError(
            f"labels outside [0, {num_classes}): "
            f"min={label.min()}, max={label.max()}"
        )
    out = np.zeros((num_classes, *label.shape), dtype=np.float32)
    for c in range(num_classes):
        out[c] = label == c
    return out


class TrainingExample:
    """A fully pre-processed (image, mask) pair ready for the model."""

    __slots__ = ("subject_id", "image", "mask")

    def __init__(self, subject_id: str, image: np.ndarray, mask: np.ndarray):
        self.subject_id = subject_id
        self.image = image  # (C, D, H, W) float32, standardized
        self.mask = mask    # (1, D, H, W) float32 binary

    def as_tuple(self) -> tuple[np.ndarray, np.ndarray]:
        return self.image, self.mask


def preprocess_subject(
    subject: Subject,
    divisor: int = 8,
    standardize_intensities: bool = True,
    multiclass: bool = False,
    num_classes: int = 4,
) -> TrainingExample:
    """The paper's full per-subject transform: crop to a
    pooling-divisible shape, standardise, binarise labels, channels
    first (the generator is already channels-first, matching Section
    III-A's data format).

    ``multiclass=True`` keeps the original 4-class problem instead of
    the paper's binary reduction: the mask becomes the
    ``(num_classes, D, H, W)`` one-hot encoding for the softmax head.
    """
    image = crop_to_divisible(subject.image, divisor)
    label = crop_to_divisible(subject.label, divisor)
    if standardize_intensities:
        image = standardize(image)
    if multiclass:
        mask = one_hot(label, num_classes)
    else:
        mask = merge_labels_binary(label)[None]  # (1, D, H, W)
    return TrainingExample(subject.subject_id, image.astype(np.float32), mask)
