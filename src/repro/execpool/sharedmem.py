"""Zero-copy dataset handoff via POSIX shared memory.

The paper binarises the dataset **once** so no epoch repeats the
transform (Section III-B1); with a process pool the same argument
applies across *workers*: the parent decodes the binarised splits once,
publishes the stacked arrays into one ``multiprocessing.shared_memory``
segment, and every worker **attaches** to that segment instead of
re-decoding (or worse, receiving a pickled copy).  Resident-set growth
per extra worker is a small page-table constant, not a dataset copy.

* :class:`SharedArrayStore` -- parent side: pack a ``{name: ndarray}``
  map into a single shared-memory block (publisher owns the block and
  must ``close()``/``unlink()`` it);
* :class:`SharedArrayHandle` -- the picklable descriptor (segment name +
  per-array offset/shape/dtype) shipped to workers;
* :meth:`SharedArrayHandle.attach` -- worker side: map the segment and
  return ndarray views over it, zero-copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayStore", "SharedArrayHandle", "AttachedArrays"]

_ALIGN = 64  # cache-line alignment for each packed array


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable descriptor of a published array bundle."""

    shm_name: str
    nbytes: int
    # name -> (byte offset, shape, dtype string)
    entries: tuple[tuple[str, int, tuple, str], ...]

    def attach(self) -> "AttachedArrays":
        """Map the segment and expose the arrays as zero-copy views."""
        return AttachedArrays(self)

    @property
    def keys(self) -> tuple[str, ...]:
        return tuple(name for name, _, _, _ in self.entries)


class AttachedArrays:
    """A worker's live mapping of a :class:`SharedArrayHandle`.

    Holds the :class:`~multiprocessing.shared_memory.SharedMemory`
    mapping open for as long as the views are in use; ``close()``
    unmaps (never unlinks -- the publisher owns the segment).

    The views record the mapping's raw pointer without exporting a
    buffer from it, so this object MUST outlive every view: if it is
    garbage-collected, ``SharedMemory.__del__`` unmaps the segment and
    the views dangle (a segfault, not an exception).  Keep a reference
    wherever the arrays go.
    """

    def __init__(self, handle: SharedArrayHandle):
        self.handle = handle
        # CPython's resource tracker would unlink the (parent-owned)
        # segment when this attaching process exits (bpo-38119); an
        # attachment must not destroy the publisher's block, so
        # suppress the tracker registration for the duration of the
        # attach (unregistering afterwards would instead drop the
        # *publisher's* entry from the shared tracker process).
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register

        def _skip_shm(name, rtype):
            if rtype != "shared_memory":
                orig_register(name, rtype)

        resource_tracker.register = _skip_shm
        try:
            self._shm = shared_memory.SharedMemory(name=handle.shm_name)
        finally:
            resource_tracker.register = orig_register
        self.arrays: dict[str, np.ndarray] = {}
        for name, offset, shape, dtype in handle.entries:
            arr = np.ndarray(shape, dtype=np.dtype(dtype),
                             buffer=self._shm.buf, offset=offset)
            self.arrays[name] = arr

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def close(self) -> None:
        if self._shm is not None:
            self.arrays.clear()
            self._shm.close()
            self._shm = None


class SharedArrayStore:
    """Publish a ``{name: ndarray}`` map into one shared-memory segment.

    The publisher copies each array in exactly once; workers attach via
    the picklable :attr:`handle`.  Lifecycle: the creating process calls
    :meth:`close` then :meth:`unlink` when every worker is done (or uses
    the store as a context manager).
    """

    def __init__(self, arrays: dict[str, np.ndarray], name: str | None = None):
        if not arrays:
            raise ValueError("cannot publish an empty array bundle")
        entries = []
        offset = 0
        packed = {}
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            packed[key] = arr
            entries.append((key, offset, tuple(arr.shape), arr.dtype.str))
            offset = _aligned(offset + arr.nbytes)
        total = max(offset, 1)
        self._shm = shared_memory.SharedMemory(create=True, size=total,
                                               name=name)
        for (key, off, shape, dtype) in entries:
            dst = np.ndarray(shape, dtype=np.dtype(dtype),
                             buffer=self._shm.buf, offset=off)
            dst[...] = packed[key]
        self.handle = SharedArrayHandle(
            shm_name=self._shm.name, nbytes=total, entries=tuple(entries)
        )

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    def attach(self) -> AttachedArrays:
        """Attach from the publishing process (e.g. for verification)."""
        return self.handle.attach()

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()

    def unlink(self) -> None:
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            self._shm = None

    def __enter__(self) -> "SharedArrayStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()
