"""Process-pool trial execution: real multi-core experiment parallelism.

The paper's claim C1 is that *experiment parallelism* scales because
trials are self-contained (Ray Tune places each configuration on its own
worker, no cross-trial synchronisation).  This module is that execution
backend for the in-process reproduction: a pool of **persistent warm
worker processes** over ``multiprocessing``, fed from a work queue, with
as-completed result streaming back to the driver -- so a 4-trial search
on a 4-core host really runs on 4 cores instead of simulating it.

Protocol (all messages flow over one result queue, as-completed):

* ``("started", trial_id, worker_id, attempt)`` -- a worker picked the
  task up;
* ``("report", trial_id, attempt, metrics, checkpoint)`` -- one
  per-epoch reporter call, streamed live so the driver's scheduler
  (ASHA & co) reacts while the trial is still running;
* ``("telemetry", frame)`` -- a worker's span/metric frame (profiled
  runs only), queued *before* the terminal message so per-producer FIFO
  ordering lands it first;
* ``("heartbeat", payload)`` -- rate-limited liveness frames
  (worker id, pid, idle/busy state, current trial, cumulative busy
  seconds): idle workers beat from their task-queue poll loop, busy
  workers piggyback a beat on every reporter call.  The driver's
  :class:`~repro.telemetry.live.WorkerHealthBoard` folds these in and
  flags a worker whose beats stop arriving;
* ``("retired", worker_id, stats)`` -- a worker finished draining after
  :meth:`ProcessPoolTrialExecutor.retire_worker` and exited; paired
  with :meth:`ProcessPoolTrialExecutor.add_worker` this gives drivers
  (the ``repro.serve`` autoscaler) dynamic pool sizing;
* ``("done", trial_id, attempt, final, stopped, stats)`` /
  ``("error", trial_id, attempt, message, stats)`` -- terminal.

Heartbeating is cooperative: a trainable that computes for minutes
between reporter calls emits no busy beats, so drivers pair the
heartbeat window with the authoritative ``Process.is_alive`` check
(:meth:`ProcessPoolTrialExecutor.dead_workers`) before declaring a
worker lost.

Early stopping is **asynchronous** (exactly like Ray Tune's ASHA): the
driver broadcasts a stop for a trial on its control channel and the
worker notices at its next reporter call, so a trial may run a short way
past the decision.  Retries are driven from the parent: a crashed
attempt is resubmitted under the shared
:class:`repro.fault_tolerance.RetryPolicy`, carrying the last
checkpoint handle streamed by the crashed attempt so the worker resumes
instead of restarting (identical semantics to the serial path in
:func:`repro.raysim.tune.tune_run`).

Trainables run *in the worker*, so they must be reconstructable there:
either a picklable ``(config, reporter) -> final`` callable, or a
picklable ``trainable_factory(**factory_kwargs)`` called once per worker
at startup -- the hook used to attach shared-memory datasets
(:mod:`repro.execpool.sharedmem`) before the first task arrives.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import queue as queue_mod
import time
from typing import Callable

from ..fault_tolerance import CheckpointHandle, RetryPolicy

__all__ = ["ProcessPoolTrialExecutor", "TrialExecutionError",
           "run_trials_parallel"]


class TrialExecutionError(RuntimeError):
    """A trial failed in a worker with no retries left (raised only when
    the driver runs with ``raise_on_error``)."""


# Placed in a worker's stop_requests set when the driver asks it to
# drain-then-retire; never collides with trial ids ("trial_NNNN"...).
_RETIRE_SENTINEL = "__retire__"


def _default_start_method() -> str:
    # fork keeps warm start cheap (no re-import) and inherits the
    # already-built factory arguments; fall back to spawn elsewhere.
    return "fork" if "fork" in multiprocessing.get_all_start_methods() \
        else "spawn"


class _WorkerReporter:
    """The worker-side twin of :class:`repro.raysim.tune.Reporter`.

    Streams every reported row to the driver, mirrors the checkpoint
    capture contract (``checkpoint=...`` keyword, ``resume_from`` /
    ``last_checkpoint`` attributes), and polls the worker's control
    channel for asynchronous stop requests.
    """

    def __init__(self, trial_id: str, attempt: int, result_q, control_q,
                 stop_requests: set,
                 resume_from: CheckpointHandle | None = None,
                 heartbeat=None):
        self.trial_id = trial_id
        self.attempt = attempt
        self.stopped = False
        self.resume_from = resume_from
        self.last_checkpoint = resume_from
        self._result_q = result_q
        self._control_q = control_q
        self._stop_requests = stop_requests
        self._heartbeat = heartbeat
        self._n_results = 0

    def _drain_control(self) -> None:
        while True:
            try:
                kind, trial_id = self._control_q.get_nowait()
            except queue_mod.Empty:
                return
            if kind == "stop":
                self._stop_requests.add(trial_id)
            elif kind == "retire":
                # drain-then-retire: never interrupts the running trial,
                # the worker loop acts on the sentinel after it finishes
                self._stop_requests.add(_RETIRE_SENTINEL)

    def __call__(self, **metrics) -> bool:
        checkpoint = metrics.pop("checkpoint", None)
        self._n_results += 1
        if checkpoint is not None:
            epoch = metrics.get("epoch", self._n_results - 1)
            self.last_checkpoint = CheckpointHandle(epoch=epoch,
                                                    path=str(checkpoint))
        self._result_q.put(("report", self.trial_id, self.attempt,
                            dict(metrics),
                            None if checkpoint is None else str(checkpoint)))
        if self._heartbeat is not None:
            self._heartbeat("busy", self.trial_id)
        self._drain_control()
        if self.trial_id in self._stop_requests:
            self.stopped = True
            return False
        return True


def _worker_stats(worker_id: int, busy_s: float) -> dict:
    try:
        import resource

        max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except Exception:
        max_rss_kb = 0
    return {"worker_id": worker_id, "pid": os.getpid(),
            "busy_seconds": busy_s, "max_rss_kb": int(max_rss_kb)}


def _worker_main(worker_id: int, task_q, result_q, control_q,
                 trainable, trainable_factory, factory_kwargs,
                 profile: bool = False, heartbeat_s: float = 1.0) -> None:
    """Persistent worker loop: build the trainable once, then serve
    tasks until the ``None`` shutdown sentinel arrives.

    With ``profile`` the worker installs a fresh process-local
    :class:`~repro.telemetry.TelemetryHub` (so instrumented code picked
    up via ``get_hub()`` records here instead of into the forked copy of
    the driver's hub) and streams a telemetry frame -- incremental spans
    plus cumulative metric samples, see
    :func:`repro.telemetry.aggregate.capture_frame` -- before every
    terminal message; per-producer FIFO ordering guarantees the driver
    ingests the frame before it retires the trial.
    """
    from ..raysim.tune import StopTrial

    worker_hub = None
    span_cursor = 0
    if profile:
        from ..telemetry import TelemetryHub, set_hub

        worker_hub = TelemetryHub()
        set_hub(worker_hub)
    if trainable is None:
        trainable = trainable_factory(**(factory_kwargs or {}))

    def send_frame() -> None:
        nonlocal span_cursor
        if worker_hub is None:
            return
        from ..telemetry.aggregate import capture_frame

        frame, span_cursor = capture_frame(worker_hub, worker_id,
                                           since=span_cursor)
        result_q.put(("telemetry", frame))

    stop_requests: set = set()
    busy_s = 0.0
    last_beat = -heartbeat_s  # first beat goes out immediately

    def beat(state: str, trial_id=None, force: bool = False) -> None:
        """Rate-limited liveness frame on the result queue."""
        nonlocal last_beat
        now = time.monotonic()
        if not force and now - last_beat < heartbeat_s:
            return
        last_beat = now
        result_q.put(("heartbeat", {
            "worker_id": worker_id, "pid": os.getpid(), "state": state,
            "trial_id": trial_id, "busy_seconds": busy_s,
        }))

    def drain_idle_control() -> None:
        """Notice retire requests while no reporter is polling."""
        while True:
            try:
                kind, payload = control_q.get_nowait()
            except queue_mod.Empty:
                return
            if kind == "stop":
                stop_requests.add(payload)
            elif kind == "retire":
                stop_requests.add(_RETIRE_SENTINEL)

    while True:
        drain_idle_control()
        if _RETIRE_SENTINEL in stop_requests:
            # drain-then-retire: the current task (if any) already
            # finished; anything still queued is picked up by peers
            result_q.put(("retired", worker_id,
                          _worker_stats(worker_id, busy_s)))
            return
        try:
            task = task_q.get(timeout=heartbeat_s)
        except queue_mod.Empty:
            beat("idle", force=True)
            continue
        if task is None:
            return
        trial_id, config, attempt, resume_from = task
        result_q.put(("started", trial_id, worker_id, attempt))
        beat("busy", trial_id, force=True)
        reporter = _WorkerReporter(trial_id, attempt, result_q, control_q,
                                   stop_requests, resume_from=resume_from,
                                   heartbeat=beat)
        t0 = time.perf_counter()
        try:
            final = trainable(dict(config), reporter)
        except StopTrial:
            busy_s += time.perf_counter() - t0
            send_frame()
            result_q.put(("done", trial_id, attempt, None, True,
                          _worker_stats(worker_id, busy_s)))
        except BaseException as exc:
            busy_s += time.perf_counter() - t0
            send_frame()
            result_q.put(("error", trial_id, attempt,
                          f"{type(exc).__name__}: {exc}",
                          _worker_stats(worker_id, busy_s)))
        else:
            busy_s += time.perf_counter() - t0
            send_frame()
            result_q.put(("done", trial_id, attempt, final,
                          reporter.stopped,
                          _worker_stats(worker_id, busy_s)))
        beat("idle", force=True)  # publish final busy_seconds promptly


class ProcessPoolTrialExecutor:
    """Persistent warm worker processes executing trials from a queue.

    >>> pool = ProcessPoolTrialExecutor(trainable=my_fn, max_workers=4)
    >>> pool.submit("trial_0000", {"lr": 1e-3})
    >>> kind, *payload = pool.next_message()
    >>> pool.shutdown()

    Exactly one of ``trainable`` (a picklable callable run per task) or
    ``trainable_factory`` (+ ``factory_kwargs``, called once per worker
    at startup) must be given.  ``stop_trial`` broadcasts an
    asynchronous stop; ``shutdown`` drains (or cancels) pending work and
    joins the workers, escalating to ``terminate`` after ``grace_s``.
    """

    def __init__(self, trainable: Callable | None = None, *,
                 trainable_factory: Callable | None = None,
                 factory_kwargs: dict | None = None,
                 max_workers: int | None = None,
                 start_method: str | None = None,
                 telemetry=None,
                 heartbeat_s: float = 1.0,
                 worker_telemetry: bool | None = None):
        if (trainable is None) == (trainable_factory is None):
            raise ValueError(
                "pass exactly one of trainable / trainable_factory"
            )
        if max_workers is None:
            max_workers = max(1, (os.cpu_count() or 1))
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if telemetry is None:
            from ..telemetry import get_hub

            telemetry = get_hub()
        self.telemetry = telemetry
        self.max_workers = max_workers
        self.heartbeat_s = float(heartbeat_s)
        self._ctx = multiprocessing.get_context(
            start_method or _default_start_method())
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        # Worker-side telemetry (a process-local hub + frames streamed
        # back over the result queue) follows the hub's profile flag by
        # default; ``worker_telemetry`` forces it on for drivers that
        # need worker spans without full profiling (request tracing).
        self._profile = (bool(getattr(telemetry, "profile", False))
                         or bool(worker_telemetry))
        self._worker_args = (trainable, trainable_factory, factory_kwargs)
        self._control_qs = []
        self._procs = []
        self._retiring: set[int] = set()
        self._g_workers = telemetry.metrics.gauge(
            "execpool_workers", "worker processes in the trial pool")
        for _ in range(max_workers):
            self._spawn_worker()
        self._submitted = 0
        self._shut_down = False
        self._g_workers.set(self.worker_count())

    def _spawn_worker(self) -> int:
        """Start one more persistent worker; returns its worker id."""
        wid = len(self._procs)
        control_q = self._ctx.Queue()
        trainable, factory, factory_kwargs = self._worker_args
        p = self._ctx.Process(
            target=_worker_main,
            args=(wid, self._task_q, self._result_q, control_q,
                  trainable, factory, factory_kwargs, self._profile,
                  self.heartbeat_s),
            daemon=True, name=f"trial-worker-{wid}",
        )
        self._control_qs.append(control_q)
        self._procs.append(p)
        p.start()
        return wid

    # -- submission / streaming -------------------------------------------
    def submit(self, trial_id: str, config: dict, attempt: int = 0,
               resume_from: CheckpointHandle | None = None) -> None:
        if self._shut_down:
            raise RuntimeError("executor is shut down")
        self._task_q.put((trial_id, dict(config), attempt, resume_from))
        self._submitted += 1

    def next_message(self, timeout: float | None = None):
        """Block for the next worker message (as-completed streaming).

        Polls worker liveness underneath: if every worker died with work
        still outstanding this raises instead of blocking forever.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                return self._result_q.get(timeout=0.2)
            except queue_mod.Empty:
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        "no worker message within timeout") from None
                if not any(p.is_alive() for p in self._procs):
                    raise RuntimeError(
                        "all trial workers exited unexpectedly"
                    ) from None

    def poll_message(self):
        """Non-blocking :meth:`next_message`: the next queued worker
        message, or ``None`` if nothing is waiting right now.  The hook
        step-driven drivers (``repro.serve``) drain between their own
        deadline checks without inheriting the blocking poll's
        granularity."""
        try:
            return self._result_q.get_nowait()
        except queue_mod.Empty:
            return None

    def dead_workers(self) -> list[int]:
        """Workers whose process exited *unexpectedly* -- a worker asked
        to retire is draining by request and is never reported dead."""
        return [i for i, p in enumerate(self._procs)
                if not p.is_alive() and i not in self._retiring]

    def alive_workers(self) -> list[int]:
        """Ids of workers currently serving the task queue (alive and
        not retiring)."""
        return [i for i, p in enumerate(self._procs)
                if p.is_alive() and i not in self._retiring]

    def worker_count(self) -> int:
        """Workers currently serving the task queue (started, not dead,
        not retiring)."""
        return len(self.alive_workers())

    # -- dynamic pool sizing ------------------------------------------------
    def add_worker(self) -> int:
        """Scale up: start one more warm worker on the shared queues.

        The new worker builds its trainable from the same
        ``trainable_factory`` the pool started with and begins pulling
        from the task queue immediately; returns its worker id.
        """
        if self._shut_down:
            raise RuntimeError("executor is shut down")
        wid = self._spawn_worker()
        self._g_workers.set(self.worker_count())
        return wid

    def retire_worker(self, worker_id: int) -> None:
        """Scale down: ask one worker to drain-then-exit.

        The worker finishes the task it is running (a retire never
        interrupts work), emits a terminal ``("retired", worker_id,
        stats)`` message, and exits; tasks still queued are picked up by
        the remaining workers.  Idempotent.
        """
        if self._shut_down:
            raise RuntimeError("executor is shut down")
        if not 0 <= worker_id < len(self._procs):
            raise ValueError(f"no such worker {worker_id}")
        if worker_id in self._retiring:
            return
        self._retiring.add(worker_id)
        try:
            self._control_qs[worker_id].put(("retire", None))
        except (OSError, ValueError):
            pass
        self._g_workers.set(self.worker_count())

    def stop_trial(self, trial_id: str) -> None:
        """Broadcast an asynchronous stop; the owning worker notices at
        its next reporter call."""
        for q in self._control_qs:
            try:
                q.put(("stop", trial_id))
            except (OSError, ValueError):
                pass

    # -- lifecycle ---------------------------------------------------------
    def cancel_pending(self) -> int:
        """Drain tasks not yet picked up; returns how many were
        cancelled."""
        n = 0
        while True:
            try:
                self._task_q.get_nowait()
                n += 1
            except queue_mod.Empty:
                return n

    def shutdown(self, wait: bool = True, cancel_pending: bool = True,
                 grace_s: float = 5.0) -> None:
        if self._shut_down:
            return
        self._shut_down = True
        if cancel_pending:
            self.cancel_pending()
        for _ in self._procs:
            try:
                self._task_q.put(None)
            except (OSError, ValueError):
                pass
        if wait:
            deadline = time.monotonic() + grace_s
            for p in self._procs:
                p.join(timeout=max(0.0, deadline - time.monotonic()))
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        for q in [self._task_q, self._result_q, *self._control_qs]:
            q.close()
            q.cancel_join_thread()

    def __enter__(self) -> "ProcessPoolTrialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def run_trials_parallel(
    executor: ProcessPoolTrialExecutor,
    configs: list[dict],
    scheduler=None,
    retry_policy: RetryPolicy | None = None,
    metric: str | None = None,
    mode: str = "max",
    raise_on_error: bool = False,
    search_alg=None,
    telemetry=None,
    message_timeout: float | None = 600.0,
    progress=None,
):
    """Drive a batch of configurations through a process pool.

    The driver owns all trial state (the :class:`~repro.raysim.tune.Trial`
    data model, the scheduler, retries); workers only execute.  Reports
    stream back as-completed, so the scheduler sees results in arrival
    order across concurrently running trials -- the asynchronous
    semantics ASHA is designed for.  Returns the ``Trial`` list in
    submission order.
    """
    from ..raysim.tune import Trial, TrialScheduler, TrialStatus

    if scheduler is None:
        from ..raysim.tune import FIFOScheduler

        scheduler = FIFOScheduler()
    retry_policy = retry_policy or RetryPolicy(max_retries=0)
    if telemetry is None:
        from ..telemetry import get_hub

        telemetry = get_hub()
    m_trials = telemetry.metrics.counter(
        "tune_trials_total", "trials finished by terminal status",
        ("status",))
    m_started = telemetry.metrics.counter(
        "tune_trials_started_total", "trials handed to the trainable")
    m_retries = telemetry.metrics.counter(
        "tune_retries_total", "crashed trial attempts that were retried")
    m_restores = telemetry.metrics.counter(
        "tune_restores_total", "retries that resumed from a checkpoint")
    m_decisions = telemetry.metrics.counter(
        "scheduler_decisions_total",
        "per-report scheduler continue/stop decisions", ("decision",))
    m_tasks = telemetry.metrics.counter(
        "execpool_tasks_total", "trial attempts finished per worker",
        ("worker",))
    m_task_seconds = telemetry.metrics.histogram(
        "execpool_task_seconds", "wall-clock per trial attempt in a worker")
    m_reports = telemetry.metrics.counter(
        "execpool_reports_total", "per-epoch reports streamed from workers")
    m_nonfinite = telemetry.metrics.counter(
        "trials_nonfinite_total",
        "reports carrying a non-finite metric value (NaN/inf loss)")
    g_queued = telemetry.metrics.gauge(
        "tune_trials_pending", "trials submitted but not yet running")
    live = getattr(telemetry, "live", None)

    trials: list[Trial] = []
    by_id: dict[str, Trial] = {}
    last_checkpoint: dict[str, CheckpointHandle | None] = {}
    started_at: dict[str, float] = {}
    attempt_t0: dict[str, float] = {}
    assignment: dict[str, int] = {}
    attempt_of: dict[str, int] = {}  # current (latest-submitted) attempt
    in_flight: dict = {}  # trial_id -> open Span, for the live table
    pending: set[str] = set()
    for i, config in enumerate(configs):
        trial = Trial(trial_id=f"trial_{i:04d}", config=dict(config))
        trials.append(trial)
        by_id[trial.trial_id] = trial
        last_checkpoint[trial.trial_id] = None
        pending.add(trial.trial_id)
        m_started.inc()
        started_at[trial.trial_id] = time.perf_counter()
        attempt_of[trial.trial_id] = 0
        executor.submit(trial.trial_id, config)

    def resubmit(trial: Trial, failed_attempt: int) -> bool:
        """Apply the retry policy to a crashed attempt; True if the
        trial was requeued."""
        if failed_attempt + 1 >= retry_policy.max_attempts:
            return False
        m_retries.inc()
        delay = retry_policy.delay(failed_attempt + 1)
        if delay > 0:
            time.sleep(delay)
        resume = None
        handle = last_checkpoint[trial.trial_id]
        if retry_policy.resume == "checkpoint" and handle is not None:
            resume = handle
            trial.restored_epoch = handle.epoch
            keep = handle.epoch
            trial.results = [
                r for r in trial.results if r.get("epoch", keep + 1) <= keep
            ]
            scheduler.on_trial_retry(trial, keep_up_to=keep)
            m_restores.inc()
        else:
            trial.restored_epoch = None
            trial.results.clear()
            scheduler.on_trial_retry(trial, keep_up_to=None)
        trial.retries = failed_attempt + 1
        attempt_of[trial.trial_id] = failed_attempt + 1
        executor.submit(trial.trial_id, trial.config,
                        attempt=failed_attempt + 1, resume_from=resume)
        return True

    def finish(trial: Trial, stats: dict | None) -> None:
        trial.runtime_s = time.perf_counter() - started_at[trial.trial_id]
        pending.discard(trial.trial_id)
        assignment.pop(trial.trial_id, None)
        in_flight.pop(trial.trial_id, None)
        m_trials.labels(status=trial.status.value).inc()
        worker_attr = {}
        if stats:
            worker = str(stats["worker_id"])
            worker_attr = {"worker": worker}
            m_tasks.labels(worker=worker).inc()
            telemetry.metrics.gauge(
                "execpool_worker_rss_kb", "worker peak resident set",
                ("worker",)).labels(worker=worker).set(stats["max_rss_kb"])
            telemetry.metrics.gauge(
                "execpool_worker_busy_seconds",
                "cumulative busy wall-clock per worker",
                ("worker",)).labels(worker=worker).set(
                    stats["busy_seconds"])
        telemetry.tracer.add_completed(
            trial.trial_id, trial.runtime_s, category="trial",
            **worker_attr,
            **{k: str(v) for k, v in trial.config.items()})
        scheduler.on_trial_complete(trial)
        if search_alg is not None and metric is not None:
            score = trial.best_metric(metric, mode)
            if score is not None:
                search_alg.observe(trial.config, score)

    first_error: str | None = None

    def fail_over_dead_workers() -> None:
        """Authoritative liveness check: any in-flight trial assigned to
        a worker whose process has exited is treated as a crashed
        attempt (resubmitted under the retry policy, else ERROR).
        Idempotent -- failing a trial over removes its assignment, so a
        re-scan of a still-dead worker is a no-op.
        """
        nonlocal first_error
        dead = executor.dead_workers()
        if not dead:
            return
        for wid in dead:
            if live is not None:
                live.on_worker_dead(wid)
            for tid, owner in list(assignment.items()):
                if owner != wid:
                    continue
                trial = by_id[tid]
                failed_attempt = attempt_of.get(tid, trial.retries)
                trial.error = f"worker {wid} process died mid-trial"
                assignment.pop(tid, None)
                if tid in attempt_t0:
                    m_task_seconds.observe(
                        time.perf_counter() - attempt_t0.pop(tid))
                if resubmit(trial, failed_attempt):
                    continue
                trial.status = TrialStatus.ERROR
                finish(trial, None)
                if first_error is None:
                    first_error = f"{tid}: {trial.error}"
        if live is not None:
            telemetry.live_tick(force=True)  # surface the stall now

    # With a live monitor attached the driver polls on a short timeout
    # so monitor ticks (snapshots, stall detection, alerts) keep flowing
    # while trials compute; message_timeout still bounds total silence.
    poll_s = None
    if live is not None:
        poll_s = min(getattr(live, "interval_s", 1.0),
                     getattr(executor, "heartbeat_s", 1.0))
        poll_s = max(0.05, poll_s / 2.0)
    last_msg_t = time.monotonic()
    while pending:
        g_queued.set(len(pending) - len(assignment))
        telemetry.live_tick()
        try:
            if poll_s is None:
                msg = executor.next_message(timeout=message_timeout)
            else:
                msg = executor.next_message(timeout=poll_s)
        except TimeoutError:
            if poll_s is None:
                raise
            fail_over_dead_workers()
            if raise_on_error and first_error is not None:
                break
            if message_timeout is not None and \
                    time.monotonic() - last_msg_t > message_timeout:
                raise
            continue
        except RuntimeError:
            # Every worker died: fail whatever is still outstanding.
            for wid in executor.dead_workers():
                if live is not None:
                    live.on_worker_dead(wid)
            for tid in sorted(pending):
                trial = by_id[tid]
                trial.status = TrialStatus.ERROR
                trial.error = "worker pool died"
                finish(trial, None)
            if live is not None:
                telemetry.live_tick(force=True)
            if raise_on_error:
                raise TrialExecutionError("worker pool died with "
                                          f"{len(trials)} trials pending")
            break
        last_msg_t = time.monotonic()
        kind = msg[0]
        if kind == "heartbeat":
            if live is not None:
                live.on_heartbeat(msg[1])
            continue
        if kind == "telemetry":
            # A worker's span/metric frame (streamed before its terminal
            # message): fold into the cross-process aggregate.
            telemetry.ingest_worker_frame(msg[1])
            continue
        if kind == "retired":
            continue  # an autoscaler-driven drain, not a failure
        if kind == "started":
            _, tid, worker_id, attempt = msg
            if tid not in pending or attempt != attempt_of.get(tid):
                continue  # stale: this attempt was already failed over
            trial = by_id[tid]
            trial.status = TrialStatus.RUNNING
            assignment[tid] = worker_id
            attempt_t0[tid] = time.perf_counter()
            from ..telemetry.spans import Span

            in_flight[tid] = Span(name=tid, start=telemetry.tracer.now(),
                                  category="trial")
        elif kind == "report":
            _, tid, attempt, metrics, checkpoint = msg
            if tid not in pending or attempt != attempt_of.get(tid):
                continue
            trial = by_id[tid]
            m_reports.inc()
            if any(isinstance(v, float) and not math.isfinite(v)
                   for v in metrics.values()):
                m_nonfinite.inc()
            trial.results.append(dict(metrics))
            if checkpoint is not None:
                epoch = metrics.get("epoch", len(trial.results) - 1)
                last_checkpoint[tid] = CheckpointHandle(epoch=epoch,
                                                        path=checkpoint)
            decision = scheduler.on_result(trial, metrics)
            m_decisions.labels(decision=decision).inc()
            if decision == TrialScheduler.STOP:
                executor.stop_trial(tid)
        elif kind == "done":
            _, tid, attempt, final, stopped, stats = msg
            if tid not in pending or attempt != attempt_of.get(tid):
                continue
            trial = by_id[tid]
            if tid in attempt_t0:
                m_task_seconds.observe(
                    time.perf_counter() - attempt_t0.pop(tid))
            trial.retries = attempt
            trial.status = (TrialStatus.STOPPED if stopped
                            else TrialStatus.TERMINATED)
            trial.error = None
            if isinstance(final, dict):
                trial.final = final
            finish(trial, stats)
        elif kind == "error":
            _, tid, attempt, message, stats = msg
            if tid not in pending or attempt != attempt_of.get(tid):
                continue
            trial = by_id[tid]
            if tid in attempt_t0:
                m_task_seconds.observe(
                    time.perf_counter() - attempt_t0.pop(tid))
            trial.retries = attempt
            trial.error = message
            if resubmit(trial, attempt):
                continue
            trial.status = TrialStatus.ERROR
            finish(trial, stats)
            if first_error is None:
                first_error = f"{tid}: {message}"
            if raise_on_error:
                break
        if progress is not None:
            progress.update(trials, in_flight=in_flight,
                            now=telemetry.tracer.now())
    g_queued.set(0)
    if progress is not None:
        progress.finish(trials)
    if raise_on_error and first_error is not None:
        executor.cancel_pending()
        raise TrialExecutionError(first_error)
    return trials
