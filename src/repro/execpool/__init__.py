"""Real multi-core trial execution for the experiment-parallel method.

The execution backend behind claim C1: a pool of persistent worker
processes runs self-contained trials concurrently
(:class:`ProcessPoolTrialExecutor`), fed zero-copy from shared-memory
split arrays (:class:`SharedArrayStore` / :class:`SharedArrayHandle`)
so each extra worker costs an attach, not a dataset copy.  Selected via
``executor="process"`` in :func:`repro.raysim.tune.tune_run`,
:func:`repro.core.experiment_parallel.run_search_inprocess`,
:meth:`repro.core.runner.DistMISRunner.run_inprocess`, and
``distmis search --executor process --workers N``.
"""

from .executor import (
    ProcessPoolTrialExecutor,
    TrialExecutionError,
    run_trials_parallel,
)
from .sharedmem import AttachedArrays, SharedArrayHandle, SharedArrayStore

__all__ = [
    "ProcessPoolTrialExecutor",
    "TrialExecutionError",
    "run_trials_parallel",
    "SharedArrayStore",
    "SharedArrayHandle",
    "AttachedArrays",
]
