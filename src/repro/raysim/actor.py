"""Actors: stateful workers with serialised method execution.

``session.actor(Cls).remote(*ctor_args)`` creates an :class:`ActorHandle`
whose methods gain a ``.remote(...)`` form returning :class:`ObjectRef`.
Method calls on one actor execute in submission order on a dedicated
worker thread (Ray's single-threaded actor semantics), so actor state
never needs locking -- the property the Ray SGD parameter-holder relies
on.
"""

from __future__ import annotations

import queue
import threading

from .object_store import ObjectRef
from .remote import RaySession, TaskError

__all__ = ["ActorHandle", "ActorClass", "ActorMethod"]

_SHUTDOWN = object()


class ActorMethod:
    def __init__(self, handle: "ActorHandle", name: str):
        self._handle = handle
        self._name = name

    def remote(self, *args, **kwargs) -> ObjectRef:
        return self._handle._enqueue(self._name, args, kwargs)

    def __call__(self, *args, **kwargs):
        raise TypeError(
            f"actor methods must be called with .remote(); "
            f"got direct call of {self._name!r}"
        )


class ActorHandle:
    """Driver-side proxy for a live actor."""

    def __init__(self, session: RaySession, cls, args, kwargs):
        self._session = session
        self._cls = cls
        self._queue: "queue.Queue" = queue.Queue()
        self._alive = True
        self._thread = threading.Thread(
            target=self._loop, args=(args, kwargs), daemon=True
        )
        self._ready = threading.Event()
        self._init_error: BaseException | None = None
        self._thread.start()
        self._ready.wait()
        if self._init_error is not None:
            err = TaskError(f"actor {cls.__name__} failed to construct")
            err.__cause__ = self._init_error
            raise err

    def _loop(self, args, kwargs) -> None:
        try:
            instance = self._cls(*args, **kwargs)
        except BaseException as exc:
            self._init_error = exc
            self._ready.set()
            return
        self._ready.set()
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            name, cargs, ckwargs, ref = item
            try:
                value = getattr(instance, name)(*cargs, **ckwargs)
            except Exception as exc:
                value = TaskError(f"actor method {name} failed: {exc}")
                value.__cause__ = exc
            self._session.store.fulfill(ref, value)

    def _enqueue(self, name, args, kwargs) -> ObjectRef:
        if not self._alive:
            raise RuntimeError("actor has been terminated")
        ref = self._session.store.reserve(owner=f"{self._cls.__name__}.{name}")
        self._queue.put((name, args, kwargs, ref))
        return ref

    def __getattr__(self, name: str) -> ActorMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        return ActorMethod(self, name)

    def terminate(self) -> None:
        if self._alive:
            self._alive = False
            self._queue.put(_SHUTDOWN)
            self._thread.join(timeout=10)


class ActorClass:
    """Factory returned by ``session.actor(Cls)``."""

    def __init__(self, session: RaySession, cls):
        self._session = session
        self._cls = cls

    def remote(self, *args, **kwargs) -> ActorHandle:
        return ActorHandle(self._session, self._cls, args, kwargs)


def _session_actor(self: RaySession, cls) -> ActorClass:
    return ActorClass(self, cls)


def _session_get_blocking(self: RaySession, ref, timeout: float = 30.0):
    """Actor results are fulfilled asynchronously; poll with a deadline."""
    import time

    deadline = time.monotonic() + timeout
    while True:
        if isinstance(ref, ObjectRef) and not self.store.contains(ref):
            with self._lock:
                pending = ref.ref_id in self._pending
            if not pending:
                if time.monotonic() > deadline:
                    raise TimeoutError(f"{ref!r} not fulfilled in {timeout}s")
                time.sleep(0.0005)
                continue
        return self.get(ref)


# Attach the actor API to RaySession (kept here to avoid a circular import).
RaySession.actor = _session_actor
RaySession.get_blocking = _session_get_blocking
