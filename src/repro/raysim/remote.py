"""Remote tasks and futures (the ``@ray.remote`` analogue).

A :class:`RaySession` owns an object store and an executor; decorating a
function with ``session.remote`` gives it a ``.remote(*args)`` method
that submits the call and immediately returns an :class:`ObjectRef`.
``session.get`` blocks on (resolves) refs; refs passed as arguments are
resolved before the task body runs, exactly like Ray's dataflow
semantics.

Execution is eager-local by default (``num_workers=0``: the call runs
inline at submission, which keeps tests deterministic) or via a thread
pool (``num_workers>0``) for genuine overlap -- NumPy kernels release
the GIL, so the pool gives real parallel speedup for array-heavy tasks.
"""

from __future__ import annotations

import functools
import threading
from concurrent.futures import Future, ThreadPoolExecutor

from .object_store import ObjectRef, ObjectStore

__all__ = ["RaySession", "RemoteFunction", "TaskError"]


class TaskError(RuntimeError):
    """A remote task raised; carries the original exception as __cause__."""


class RemoteFunction:
    """Wrapper produced by ``session.remote``."""

    def __init__(self, session: "RaySession", fn):
        self._session = session
        self._fn = fn
        functools.update_wrapper(self, fn)

    def remote(self, *args, **kwargs) -> ObjectRef:
        return self._session._submit(self._fn, args, kwargs)

    def __call__(self, *args, **kwargs):
        """Direct (non-remote) invocation stays available."""
        return self._fn(*args, **kwargs)


class RaySession:
    """Driver-side runtime: object store + executor + bookkeeping."""

    def __init__(self, num_workers: int = 0,
                 object_store_capacity: int | None = None):
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.store = ObjectStore(capacity_bytes=object_store_capacity)
        self.num_workers = num_workers
        self._pool = (
            ThreadPoolExecutor(max_workers=num_workers) if num_workers else None
        )
        self._pending: dict[int, Future] = {}
        self._lock = threading.Lock()
        self.tasks_submitted = 0

    # -- decorator ------------------------------------------------------
    def remote(self, fn) -> RemoteFunction:
        return RemoteFunction(self, fn)

    # -- submission ------------------------------------------------------
    def _resolve_value(self, value):
        """Resolve refs anywhere in a (possibly nested) container."""
        if isinstance(value, ObjectRef):
            return self.store.get(value)
        if isinstance(value, (list, tuple)):
            return type(value)(self._resolve_value(v) for v in value)
        if isinstance(value, dict):
            return {k: self._resolve_value(v) for k, v in value.items()}
        return value

    def _resolve_args(self, args, kwargs):
        args = tuple(self._resolve_value(a) for a in args)
        kwargs = {k: self._resolve_value(v) for k, v in kwargs.items()}
        return args, kwargs

    def _submit(self, fn, args, kwargs) -> ObjectRef:
        self.tasks_submitted += 1
        if self._pool is None:
            rargs, rkwargs = self._resolve_args(args, kwargs)
            try:
                value = fn(*rargs, **rkwargs)
            except Exception as exc:
                value = TaskError(f"task {fn.__name__} failed: {exc}")
                value.__cause__ = exc
            return self.store.put(value, owner=fn.__name__)

        ref = self.store.reserve(owner=fn.__name__)

        def run():
            rargs, rkwargs = self._resolve_args(args, kwargs)
            return fn(*rargs, **rkwargs)

        fut = self._pool.submit(run)
        with self._lock:
            self._pending[ref.ref_id] = fut
        return ref

    # -- retrieval ---------------------------------------------------------
    def get(self, ref):
        """Resolve refs (or nested lists) to values, raising TaskError for
        failed tasks."""
        if isinstance(ref, (list, tuple)):
            return type(ref)(self.get(r) for r in ref)
        if not isinstance(ref, ObjectRef):
            return ref
        with self._lock:
            fut = self._pending.pop(ref.ref_id, None)
        if fut is not None:
            try:
                value = fut.result()
            except Exception as exc:
                value = TaskError(f"task failed: {exc}")
                value.__cause__ = exc
            self.store.fulfill(ref, value)
        value = self.store.get(ref)
        if isinstance(value, TaskError):
            raise value
        return value

    def put(self, value) -> ObjectRef:
        return self.store.put(value)

    def wait_all(self, refs):
        """Resolve every ref, returning values in order."""
        return [self.get(r) for r in refs]

    def wait(self, refs, num_returns: int = 1):
        """``ray.wait`` analogue: split refs into (ready, pending).

        Returns once at least ``num_returns`` tasks have completed;
        completed means the backing future is done (eager-mode tasks are
        always done).  Unlike ``get``, does not raise for failed tasks
        -- failures count as ready and surface at ``get`` time.
        """
        refs = list(refs)
        if not 1 <= num_returns <= len(refs):
            raise ValueError(
                f"num_returns must be in [1, {len(refs)}], got {num_returns}"
            )

        def is_ready(ref: ObjectRef) -> bool:
            if self.store.contains(ref):
                return True
            with self._lock:
                fut = self._pending.get(ref.ref_id)
            return fut is not None and fut.done()

        import time as _time

        while True:
            ready = [r for r in refs if is_ready(r)]
            if len(ready) >= num_returns:
                ready_ids = {r.ref_id for r in ready}
                pending = [r for r in refs if r.ref_id not in ready_ids]
                return ready, pending
            _time.sleep(0.0005)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "RaySession":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
