"""Synchronous data-parallel SGD (the Ray SGD / MirroredStrategy analogue).

Implements the distribution semantics the paper's data-parallel method
uses, *exactly*:

* every replica starts from broadcast-identical weights;
* each step the global batch is sharded across replicas, every replica
  computes gradients on its shard (replicas run on real threads --
  NumPy's kernels release the GIL, so shards genuinely overlap);
* shard gradients are combined with the same chunked ring all-reduce
  whose cost the cluster model charges
  (:func:`repro.cluster.collectives.ring_allreduce`), weighted by shard
  size so the result equals the full-batch gradient;
* every replica applies the identical update with its own (identical)
  optimizer state, so weights stay in lock-step without re-broadcast --
  the standard synchronous-SGD invariant, asserted in the tests.

BatchNorm caveat: per-replica statistics (TensorFlow's MirroredStrategy
default) make data-parallel training only *statistically* equivalent to
single-device large-batch training.  With ``sync_batchnorm=True`` the
trainer wires a barrier-based cross-replica reducer into every BN layer
(forward statistics and backward sums), restoring bit-exact equivalence;
the paper's dice-invariance claim (Section IV-C) is validated both ways.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from ..cluster.collectives import ring_allreduce
from ..nn.kernels import consume_kernel_seconds, workspace_bytes
from ..nn.layers.batchnorm import BatchNorm
from ..nn.losses import Loss
from ..nn.module import Module
from ..nn.optimizers import Optimizer

__all__ = ["DataParallelTrainer", "SyncGroup"]


class SyncGroup:
    """Barrier-synchronised deterministic sum across replica threads."""

    def __init__(self, num_replicas: int):
        self.n = num_replicas
        self._barrier = threading.Barrier(num_replicas)
        self._slots: list = [None] * num_replicas

    def reduce(self, index: int, *values):
        """Deposit this replica's values, wait for all, return the sums
        (computed in fixed replica order, so results are deterministic)."""
        self._slots[index] = values
        self._barrier.wait()
        out = []
        for pos in range(len(values)):
            total = self._slots[0][pos]
            for r in range(1, self.n):
                total = total + self._slots[r][pos]
            out.append(total)
        self._barrier.wait()  # nobody overwrites slots until all have read
        return tuple(out)


class DataParallelTrainer:
    """Train one logical model across ``num_replicas`` virtual GPUs.

    Parameters
    ----------
    model_factory:
        Zero-argument callable building a fresh model; called once per
        replica, then weights are broadcast from replica 0.
    loss:
        A :class:`repro.nn.losses.Loss` (must be a batch *mean* for the
        sharding to recompose exactly -- all provided losses are).
    optimizer_factory:
        ``model -> Optimizer``; each replica gets its own instance.
    sync_batchnorm:
        Wire cross-replica reducers into every BatchNorm layer.
    telemetry:
        A :class:`repro.telemetry.TelemetryHub` (default: the process
        hub, usually the null sink).  Per-step loss / step-time /
        all-reduce-byte metrics are recorded through pre-resolved
        metric handles, so the disabled path is a no-op call per event.
    """

    def __init__(
        self,
        model_factory: Callable[[], Module],
        loss: Loss,
        optimizer_factory: Callable[[Module], Optimizer],
        num_replicas: int = 1,
        sync_batchnorm: bool = False,
        telemetry=None,
    ):
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.num_replicas = num_replicas
        self.loss = loss
        self.replicas: list[Module] = [model_factory() for _ in range(num_replicas)]
        state = self.replicas[0].state_dict()
        for rep in self.replicas[1:]:
            rep.load_state_dict(state)  # broadcast initial weights
        self.optimizers = [optimizer_factory(rep) for rep in self.replicas]
        self.sync_batchnorm = sync_batchnorm
        self._pool = (
            ThreadPoolExecutor(max_workers=num_replicas)
            if num_replicas > 1
            else None
        )
        if sync_batchnorm and num_replicas > 1:
            self._wire_sync_batchnorm()
        self.steps_run = 0

        if telemetry is None:
            from ..telemetry import get_hub

            telemetry = get_hub()
        self._telemetry = telemetry
        m = telemetry.metrics
        self._m_steps = m.counter(
            "train_steps_total", "optimizer steps run")
        self._m_step_seconds = m.histogram(
            "train_step_seconds", "wall-clock per synchronous step")
        self._m_loss = m.histogram(
            "train_loss", "per-step global mean loss",
            buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 2.0, 10.0))
        self._m_grad_norm = m.gauge(
            "train_grad_norm", "L2 norm of the reduced gradient")
        self._m_lr = m.gauge("train_lr", "learning rate applied last step")
        self._m_kernel_seconds = m.counter(
            "kernel_seconds_total",
            "wall-clock inside dispatched convolution kernels",
            labelnames=("backend", "op"))
        self._m_workspace_bytes = m.gauge(
            "kernel_workspace_bytes",
            "bytes held by the kernel workspace arena")
        # The kernel ledger is process-global: drop whatever an earlier
        # (possibly unprofiled) trial left behind so this trainer only
        # reports its own kernel time.
        consume_kernel_seconds()

    def _record_kernel_stats(self) -> None:
        """Drain the per-backend kernel-seconds ledger into telemetry."""
        if not self._telemetry.enabled:
            return
        for (backend, op), seconds in consume_kernel_seconds().items():
            self._m_kernel_seconds.labels(backend=backend, op=op).inc(seconds)
        self._m_workspace_bytes.set(float(workspace_bytes()))

    # -- sync BN wiring ----------------------------------------------------
    def _wire_sync_batchnorm(self) -> None:
        per_replica_bns = [
            [m for _, m in rep.named_modules() if isinstance(m, BatchNorm)]
            for rep in self.replicas
        ]
        counts = {len(bns) for bns in per_replica_bns}
        if len(counts) != 1:  # pragma: no cover - same factory => same arch
            raise ValueError("replicas disagree on BatchNorm layer count")
        for layer_idx in range(counts.pop()):
            group = SyncGroup(self.num_replicas)
            for replica_idx, bns in enumerate(per_replica_bns):
                bn = bns[layer_idx]
                bn.stats_reducer = _make_reducer(group, replica_idx)

    # -- training ----------------------------------------------------------
    @property
    def model(self) -> Module:
        """Replica 0 (all replicas hold identical weights)."""
        return self.replicas[0]

    def _shards(self, n: int) -> list[slice]:
        if n < self.num_replicas:
            raise ValueError(
                f"global batch of {n} cannot be sharded over "
                f"{self.num_replicas} replicas (the paper uses "
                f"2 x #GPUs, Section IV-B)"
            )
        bounds = np.linspace(0, n, self.num_replicas + 1).astype(int)
        return [slice(bounds[i], bounds[i + 1]) for i in range(self.num_replicas)]

    def train_step(self, x: np.ndarray, y: np.ndarray) -> dict:
        """One synchronous step on the global batch ``(x, y)``.

        Returns ``{"loss": global_mean_loss, "lr": lr_used}``.
        """
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y batch sizes differ")
        t0 = time.perf_counter()
        n_total = x.shape[0]
        shards = self._shards(n_total)
        weights = [(s.stop - s.start) / n_total for s in shards]

        def replica_step(idx: int):
            rep = self.replicas[idx]
            sl = shards[idx]
            rep.zero_grad()
            pred = rep(x[sl])
            loss_val, dpred = self.loss.forward(pred, y[sl])
            rep.backward(dpred)
            # weight so that the all-reduce SUM equals the global mean
            return loss_val * weights[idx], rep.get_flat_grads() * weights[idx]

        if self._pool is None:
            outs = [replica_step(0)]
        else:
            outs = list(self._pool.map(replica_step, range(self.num_replicas)))
        t_fb = time.perf_counter()

        grads = [g for _, g in outs]
        # every replica now holds the sum
        reduced = ring_allreduce(grads, telemetry=self._telemetry)
        t_sync_done = time.perf_counter()
        for rep, opt, g in zip(self.replicas, self.optimizers, reduced):
            rep.set_flat_grads(g)
        lrs = [opt.step() for opt in self.optimizers]
        # forward-backward plus the optimizer update; the all-reduce in
        # between attributes itself to the "sync" bucket
        self._telemetry.on_step_bucket(
            "compute", (t_fb - t0) + (time.perf_counter() - t_sync_done))
        self._record_kernel_stats()

        self.steps_run += 1
        loss_total = float(sum(l for l, _ in outs))
        self._m_steps.inc()
        self._m_step_seconds.observe(time.perf_counter() - t0)
        self._m_loss.observe(loss_total)
        self._m_lr.set(lrs[0])
        if self._telemetry.enabled:  # the norm is a derived computation
            self._m_grad_norm.set(float(np.linalg.norm(reduced[0])))
        return {"loss": loss_total, "lr": lrs[0]}

    def train_step_accumulated(
        self, x: np.ndarray, y: np.ndarray, accumulation_steps: int
    ) -> dict:
        """One optimizer update from ``accumulation_steps`` sequential
        micro-batches -- the memory-saving alternative to a big batch
        (Section V-C: a 16 GB V100 holds only 2 full volumes at once,
        but gradient accumulation emulates any global batch).  Exactly
        equivalent to :meth:`train_step` on the whole batch; asserted by
        the tests.
        """
        if accumulation_steps < 1:
            raise ValueError("accumulation_steps must be >= 1")
        t0 = time.perf_counter()
        n_total = x.shape[0]
        if n_total < accumulation_steps * self.num_replicas:
            raise ValueError(
                f"batch of {n_total} cannot feed {accumulation_steps} "
                f"micro-steps x {self.num_replicas} replicas"
            )
        bounds = np.linspace(0, n_total, accumulation_steps + 1).astype(int)

        acc: list[np.ndarray] | None = None
        loss_total = 0.0
        for k in range(accumulation_steps):
            sl = slice(bounds[k], bounds[k + 1])
            micro_w = (sl.stop - sl.start) / n_total
            shards = self._shards(sl.stop - sl.start)
            weights = [
                (s.stop - s.start) / (sl.stop - sl.start) for s in shards
            ]

            def replica_micro(idx: int):
                rep = self.replicas[idx]
                s = shards[idx]
                rep.zero_grad()
                pred = rep(x[sl][s])
                loss_val, dpred = self.loss.forward(pred, y[sl][s])
                rep.backward(dpred)
                w = weights[idx] * micro_w
                return loss_val * w, rep.get_flat_grads() * w

            if self._pool is None:
                outs = [replica_micro(0)]
            else:
                outs = list(
                    self._pool.map(replica_micro, range(self.num_replicas))
                )
            loss_total += sum(l for l, _ in outs)
            grads = [g for _, g in outs]
            acc = grads if acc is None else [a + g for a, g in zip(acc, grads)]
        t_fb = time.perf_counter()

        reduced = ring_allreduce(acc, telemetry=self._telemetry)
        t_sync_done = time.perf_counter()
        for rep, g in zip(self.replicas, reduced):
            rep.set_flat_grads(g)
        lrs = [opt.step() for opt in self.optimizers]
        self._telemetry.on_step_bucket(
            "compute", (t_fb - t0) + (time.perf_counter() - t_sync_done))
        self._record_kernel_stats()
        self.steps_run += 1
        loss_total = float(loss_total)
        self._m_steps.inc()
        self._m_step_seconds.observe(time.perf_counter() - t0)
        self._m_loss.observe(loss_total)
        self._m_lr.set(lrs[0])
        if self._telemetry.enabled:
            self._m_grad_norm.set(float(np.linalg.norm(reduced[0])))
        return {"loss": loss_total, "lr": lrs[0]}

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> dict:
        """Loss + prediction on replica 0 in eval mode."""
        pred = self.model.predict(x) if hasattr(self.model, "predict") else None
        if pred is None:
            was = self.model.training
            self.model.eval()
            pred = self.model(x)
            self.model.train(was)
        loss_val, _ = self.loss.forward(pred, y)
        return {"loss": float(loss_val), "prediction": pred}

    def weights_in_sync(self, atol: float = 0.0) -> bool:
        """Check the lock-step invariant across all replicas."""
        ref = self.replicas[0].get_flat_params()
        return all(
            np.allclose(rep.get_flat_params(), ref, atol=atol, rtol=0.0)
            for rep in self.replicas[1:]
        )

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _make_reducer(group: SyncGroup, replica_idx: int):
    def reducer(total, sq_total, count):
        s, sq, c = group.reduce(replica_idx, total, sq_total, count)
        return s, sq, c
    return reducer
