"""Cluster resource registry (the ``ray.cluster`` analogue).

Tracks per-node resource pools ({"GPU": 4, "CPU": 40}, ...) built from a
:class:`repro.cluster.ClusterSpec`, and grants/returns allocations.  The
paper's Section III-B2 three-way dispatch (single GPU / single node /
Ray cluster across nodes) reads this registry to decide which
distribution machinery to launch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.resources import ClusterSpec, DeviceId

__all__ = ["NodeResources", "RayCluster", "Allocation", "InsufficientResources"]


class InsufficientResources(RuntimeError):
    """The request cannot be satisfied by the current free pool."""


@dataclass
class NodeResources:
    """Mutable free-resource counters for one node."""

    node_id: int
    total: dict[str, float]
    free: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if not self.free:
            self.free = dict(self.total)

    def can_fit(self, request: dict[str, float]) -> bool:
        return all(self.free.get(k, 0.0) >= v for k, v in request.items())

    def acquire(self, request: dict[str, float]) -> None:
        if not self.can_fit(request):
            raise InsufficientResources(
                f"node {self.node_id}: cannot satisfy {request}, free={self.free}"
            )
        for k, v in request.items():
            self.free[k] -= v

    def release(self, request: dict[str, float]) -> None:
        for k, v in request.items():
            new = self.free.get(k, 0.0) + v
            if new > self.total.get(k, 0.0) + 1e-9:
                raise ValueError(
                    f"node {self.node_id}: releasing more {k} than acquired"
                )
            self.free[k] = new


@dataclass(frozen=True)
class Allocation:
    """A granted bundle of devices; hand back via ``RayCluster.release``."""

    devices: tuple[DeviceId, ...]
    request_per_device: dict[str, float] = field(
        default_factory=lambda: {"GPU": 1.0}
    )

    @property
    def num_gpus(self) -> int:
        return len(self.devices)

    def nodes(self) -> list[int]:
        return sorted({d.node for d in self.devices})


class RayCluster:
    """Resource view over a hardware spec with pack-or-spread placement."""

    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        self.nodes = [
            NodeResources(
                node_id=i,
                total={"GPU": float(spec.node.num_gpus),
                       "CPU": float(spec.node.cpu_cores)},
            )
            for i in range(spec.num_nodes)
        ]

    @property
    def total_gpus(self) -> int:
        return self.spec.total_gpus

    def free_gpus(self) -> int:
        return int(sum(n.free["GPU"] for n in self.nodes))

    def allocate_gpus(self, count: int, strategy: str = "pack") -> Allocation:
        """Grant ``count`` GPUs.

        ``pack`` fills nodes densely (fewest nodes -> cheapest
        collectives, the layout the paper's data-parallel runs use);
        ``spread`` round-robins across nodes (Ray's default soft-spread,
        which experiment-parallel trials tolerate because they never
        communicate).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if count > self.free_gpus():
            raise InsufficientResources(
                f"requested {count} GPUs, only {self.free_gpus()} free"
            )
        if strategy not in ("pack", "spread"):
            raise ValueError(f"unknown strategy {strategy!r}")

        devices: list[DeviceId] = []
        if strategy == "pack":
            for node in self.nodes:
                while node.free["GPU"] >= 1 and len(devices) < count:
                    local = int(node.total["GPU"] - node.free["GPU"])
                    node.acquire({"GPU": 1.0})
                    devices.append(DeviceId(node=node.node_id, local=local))
                if len(devices) == count:
                    break
        else:  # spread
            while len(devices) < count:
                candidates = [n for n in self.nodes if n.free["GPU"] >= 1]
                if not candidates:  # pragma: no cover - guarded above
                    raise InsufficientResources("ran out of GPUs mid-spread")
                node = max(candidates, key=lambda n: n.free["GPU"])
                local = int(node.total["GPU"] - node.free["GPU"])
                node.acquire({"GPU": 1.0})
                devices.append(DeviceId(node=node.node_id, local=local))
        return Allocation(devices=tuple(devices))

    def release(self, alloc: Allocation) -> None:
        for d in alloc.devices:
            self.nodes[d.node].release({"GPU": 1.0})

    def placement_case(self, num_gpus: int) -> str:
        """The paper's Section III-B2 trichotomy for data parallelism:

        * ``"sequential"`` -- n == 1, plain single-device training;
        * ``"mirrored"`` -- 1 < n <= M (GPUs of one node), Distributed
          TensorFlow MirroredStrategy;
        * ``"ray_sgd"`` -- n > M, Ray cluster + Ray SGD across nodes.
        """
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        m = self.spec.node.num_gpus
        if num_gpus == 1:
            return "sequential"
        if num_gpus <= m:
            return "mirrored"
        return "ray_sgd"
