"""Trial runner (the Ray Tune analogue).

The paper adapts its training loop to "the standard Ray API": a
*trainable* function taking a hyper-parameter dict, plus a *reporting
callback* delivering per-epoch results (Section III-B2); ``Tune.Run``
then executes the batch of experiments.  This module reproduces that
contract:

>>> def trainable(config, reporter):
...     for epoch in range(config["epochs"]):
...         dice = train_one_epoch(...)
...         if not reporter(epoch=epoch, dice=dice):
...             break                       # scheduler said stop (ASHA)
...     return {"dice": dice}
>>> analysis = tune_run(trainable, search_alg=GridSearch(space))
>>> analysis.best_trial("dice").config

``tune_run`` executes trials in-process (functional reproduction); the
*timing* of concurrent trial placement at cluster scale is what
``repro.core.experiment_parallel`` simulates with the event simulator,
using this module's Trial/scheduler data model.
"""

from __future__ import annotations

import enum
import math
import time
from dataclasses import dataclass, field
from typing import Callable

from ..fault_tolerance import CheckpointHandle, RetryPolicy
from .search import SearchAlgorithm

__all__ = [
    "TrialStatus",
    "Trial",
    "Reporter",
    "TrialScheduler",
    "FIFOScheduler",
    "ASHAScheduler",
    "HyperbandScheduler",
    "ExperimentAnalysis",
    "tune_run",
    "StopTrial",
    "RetryPolicy",
    "CheckpointHandle",
]


class StopTrial(Exception):
    """Raisable from a trainable to end the trial early (counts as
    TERMINATED, not ERROR)."""


class TrialStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    TERMINATED = "terminated"
    STOPPED = "stopped"   # early-stopped by a scheduler
    ERROR = "error"


@dataclass
class Trial:
    """One hyper-parameter configuration's lifecycle."""

    trial_id: str
    config: dict
    status: TrialStatus = TrialStatus.PENDING
    results: list[dict] = field(default_factory=list)
    final: dict | None = None
    error: str | None = None
    runtime_s: float = 0.0
    retries: int = 0
    # epoch the latest retry resumed from (None: never resumed)
    restored_epoch: int | None = None

    def last_result(self) -> dict | None:
        return self.results[-1] if self.results else None

    def best_metric(self, metric: str, mode: str = "max") -> float | None:
        vals = [r[metric] for r in self.results if metric in r]
        if self.final and metric in self.final:
            vals.append(self.final[metric])
        if not vals:
            return None
        return max(vals) if mode == "max" else min(vals)


class TrialScheduler:
    """Decides, per reported result, whether a trial continues."""

    CONTINUE = "continue"
    STOP = "stop"

    def on_result(self, trial: Trial, result: dict) -> str:
        return self.CONTINUE

    def on_trial_complete(self, trial: Trial) -> None:
        pass

    def on_trial_retry(self, trial: Trial,
                       keep_up_to: int | float | None = None) -> None:
        """A crashed attempt of ``trial`` is about to be retried.

        Stateful schedulers must discard whatever the crashed attempt
        reported after ``keep_up_to`` (in ``time_attr`` units; None =
        discard everything the trial ever contributed), otherwise lost
        results keep skewing cutoffs for later trials.
        """


class FIFOScheduler(TrialScheduler):
    """Run every trial to completion (the paper's setting: all 250-epoch
    experiments run fully)."""


class ASHAScheduler(TrialScheduler):
    """Asynchronous Successive Halving (Li et al.), the early-stopping
    scheduler Ray Tune pairs with grid/random search.

    A trial reaching rung ``r`` (time ``grace_period * reduction**r``)
    survives only if its metric is within the top ``1/reduction``
    fraction of everything seen at that rung so far.
    """

    def __init__(
        self,
        metric: str,
        mode: str = "max",
        time_attr: str = "epoch",
        grace_period: int = 10,
        reduction_factor: int = 3,
        max_t: int = 250,
    ):
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        if grace_period < 1 or reduction_factor < 2 or max_t < grace_period:
            raise ValueError("invalid ASHA parameters")
        self.metric = metric
        self.mode = mode
        self.time_attr = time_attr
        self.grace = grace_period
        self.rf = reduction_factor
        self.max_t = max_t
        # rung level -> list of recorded metric values
        self._rungs: dict[int, list[float]] = {}
        # trial_id -> [(level, value, t)] it contributed, for retry rollback
        self._entries: dict[str, list[tuple[int, float, float]]] = {}
        r = 0
        t = grace_period
        self.rung_times = []
        while t < max_t:
            self.rung_times.append(t)
            r += 1
            t = grace_period * reduction_factor**r

    def on_result(self, trial: Trial, result: dict) -> str:
        if self.metric not in result or self.time_attr not in result:
            return self.CONTINUE
        t = result[self.time_attr]
        val = float(result[self.metric])
        # A rung is due once the trial has *crossed* it and has no record
        # at that level yet -- exact equality would let trials reporting
        # every k epochs (or with non-integer time_attr) skip rungs and
        # never be early-stopped.
        entries = self._entries.setdefault(trial.trial_id, [])
        recorded_levels = {level for level, _, _ in entries}
        for level, rung_t in enumerate(self.rung_times):
            if t >= rung_t and level not in recorded_levels:
                recorded = self._rungs.setdefault(level, [])
                recorded.append(val)
                entries.append((level, val, float(t)))
                recorded_levels.add(level)
                ordered = sorted(recorded, reverse=(self.mode == "max"))
                k = max(1, len(ordered) // self.rf)
                cutoff = ordered[k - 1]
                survives = (
                    val >= cutoff if self.mode == "max" else val <= cutoff
                )
                if not survives:
                    return self.STOP
        return self.CONTINUE

    def on_trial_retry(self, trial: Trial,
                       keep_up_to: int | float | None = None) -> None:
        """Roll the crashed attempt's rung records back so lost results
        stop skewing cutoffs.  Records at or before ``keep_up_to`` came
        from checkpointed (preserved) progress and stay."""
        entries = self._entries.get(trial.trial_id)
        if not entries:
            return
        kept: list[tuple[int, float, float]] = []
        for level, val, t in entries:
            if keep_up_to is not None and t <= keep_up_to:
                kept.append((level, val, t))
            else:
                self._rungs[level].remove(val)
        self._entries[trial.trial_id] = kept


class HyperbandScheduler(TrialScheduler):
    """Asynchronous Hyperband: trials are dealt round-robin into
    brackets, each bracket running successive halving with a different
    grace period -- aggressive early stopping for most trials while one
    bracket guards against "slow starters" (the standard Ray Tune
    ``HyperBandScheduler`` trade-off).
    """

    def __init__(
        self,
        metric: str,
        mode: str = "max",
        time_attr: str = "epoch",
        max_t: int = 250,
        reduction_factor: int = 3,
        num_brackets: int = 3,
    ):
        if num_brackets < 1:
            raise ValueError("num_brackets must be >= 1")
        self.metric, self.mode, self.time_attr = metric, mode, time_attr
        self.max_t = max_t
        self.brackets = []
        for b in range(num_brackets):
            grace = max(1, max_t // (reduction_factor ** (num_brackets - b)))
            self.brackets.append(
                ASHAScheduler(
                    metric, mode=mode, time_attr=time_attr,
                    grace_period=grace, reduction_factor=reduction_factor,
                    max_t=max_t,
                )
            )
        self._assignment: dict[str, int] = {}
        self._next = 0

    def bracket_of(self, trial: Trial) -> ASHAScheduler:
        idx = self._assignment.get(trial.trial_id)
        if idx is None:
            idx = self._next % len(self.brackets)
            self._assignment[trial.trial_id] = idx
            self._next += 1
        return self.brackets[idx]

    def on_result(self, trial: Trial, result: dict) -> str:
        return self.bracket_of(trial).on_result(trial, result)

    def on_trial_retry(self, trial: Trial,
                       keep_up_to: int | float | None = None) -> None:
        self.bracket_of(trial).on_trial_retry(trial, keep_up_to=keep_up_to)


class Reporter:
    """The per-trial reporting callback handed to trainables.

    Calling it records a result row and returns True while the scheduler
    wants the trial to continue.  Fault-tolerance contract: a trainable
    that checkpoints passes ``checkpoint=<path>`` alongside its metrics
    (the key is captured into :attr:`last_checkpoint`, not stored as a
    metric), and on a resumed attempt reads :attr:`resume_from` -- the
    :class:`~repro.fault_tolerance.CheckpointHandle` of the last durable
    epoch -- to continue training instead of starting at epoch 0.
    """

    def __init__(self, trial: Trial, scheduler: TrialScheduler,
                 telemetry=None,
                 resume_from: CheckpointHandle | None = None):
        self._trial = trial
        self._scheduler = scheduler
        self.stopped = False
        self.resume_from = resume_from
        self.last_checkpoint = resume_from
        if telemetry is None:
            from ..telemetry import get_hub

            telemetry = get_hub()
        self._telemetry = telemetry
        self._m_decisions = telemetry.metrics.counter(
            "scheduler_decisions_total",
            "per-report scheduler continue/stop decisions", ("decision",))
        self._m_nonfinite = telemetry.metrics.counter(
            "trials_nonfinite_total",
            "reports carrying a non-finite metric value (NaN/inf loss)")

    @property
    def trial_id(self) -> str:
        return self._trial.trial_id

    def __call__(self, **metrics) -> bool:
        checkpoint = metrics.pop("checkpoint", None)
        self._trial.results.append(dict(metrics))
        if any(isinstance(v, float) and not math.isfinite(v)
               for v in metrics.values()):
            self._m_nonfinite.inc()
        if checkpoint is not None:
            epoch = metrics.get("epoch", len(self._trial.results) - 1)
            self.last_checkpoint = CheckpointHandle(
                epoch=epoch, path=str(checkpoint))
        decision = self._scheduler.on_result(self._trial, metrics)
        self._m_decisions.labels(decision=decision).inc()
        self._telemetry.live_tick()  # serial-path monitor heartbeat
        if decision == TrialScheduler.STOP:
            self.stopped = True
            return False
        return True


class ExperimentAnalysis:
    """Results of a ``tune_run``: the trial set plus query helpers."""

    def __init__(self, trials: list[Trial]):
        self.trials = trials

    def best_trial(self, metric: str, mode: str = "max") -> Trial:
        scored = [
            (t, t.best_metric(metric, mode))
            for t in self.trials
            if t.best_metric(metric, mode) is not None
        ]
        if not scored:
            raise ValueError(f"no trial reported metric {metric!r}")
        key = (lambda tv: tv[1]) if mode == "min" else (lambda tv: -tv[1])
        return min(scored, key=key)[0]

    def best_config(self, metric: str, mode: str = "max") -> dict:
        return self.best_trial(metric, mode).config

    def results_table(self, metric: str, mode: str = "max") -> list[dict]:
        rows = []
        for t in self.trials:
            rows.append(
                {
                    "trial_id": t.trial_id,
                    "status": t.status.value,
                    "config": dict(t.config),
                    metric: t.best_metric(metric, mode),
                    "epochs_run": len(t.results),
                }
            )
        return rows

    def num_errors(self) -> int:
        return sum(1 for t in self.trials if t.status is TrialStatus.ERROR)


def tune_run(
    trainable: Callable[[dict, Reporter], dict | None],
    search_alg: SearchAlgorithm,
    scheduler: TrialScheduler | None = None,
    metric: str | None = None,
    mode: str = "max",
    raise_on_error: bool = False,
    max_retries: int = 0,
    retry_policy: RetryPolicy | None = None,
    telemetry=None,
    executor=None,
    max_workers: int | None = None,
    progress=None,
) -> ExperimentAnalysis:
    """Execute every configuration the search algorithm proposes.

    The trainable receives ``(config, reporter)`` and may return a final
    metrics dict.  Adaptive search algorithms are fed each trial's best
    ``metric`` via :meth:`SearchAlgorithm.observe`.

    Execution backend: by default (``executor=None`` / ``"serial"``)
    trials run sequentially in this process.  ``executor="process"``
    runs them on a pool of ``max_workers`` worker processes (true
    multi-core experiment parallelism) -- the trainable must then be
    picklable, the configuration stream is materialised up front (so
    adaptive search algorithms see observations only as trials finish,
    Ray Tune's concurrent semantics), and scheduler stops are
    asynchronous.  A pre-built
    :class:`repro.execpool.ProcessPoolTrialExecutor` may be passed
    instead, in which case *its* configured trainable runs in the
    workers and the ``trainable`` argument is ignored; the caller keeps
    ownership and must shut it down.

    Fault tolerance: a crashed attempt is re-run under ``retry_policy``
    (``max_retries`` is shorthand for ``RetryPolicy(max_retries=n)``).
    With ``resume="checkpoint"`` (the default) the retry's reporter
    carries ``resume_from`` -- the last checkpoint handle the crashed
    attempt published -- so a :class:`CheckpointManager`-equipped
    trainable continues from its last epoch instead of epoch 0; results
    after the checkpointed epoch are dropped, and the scheduler's
    :meth:`~TrialScheduler.on_trial_retry` rolls back the matching rung
    records so lost work cannot skew ASHA cutoffs.  Without a published
    checkpoint (or with ``resume="scratch"``) the retry starts clean.
    Only the final attempt's status is recorded, with the attempt count
    in ``Trial.retries`` and the resume point in
    ``Trial.restored_epoch``.  ``telemetry`` (default: the process hub)
    receives one span per trial, trial-status counters, and the
    ``tune_retries_total`` / ``tune_restores_total`` counters.
    ``progress`` (a :class:`repro.telemetry.profiler.ProgressReporter`)
    renders a live trial table as results arrive.
    """
    scheduler = scheduler or FIFOScheduler()
    if retry_policy is None:
        retry_policy = RetryPolicy(max_retries=max_retries)
    if telemetry is None:
        from ..telemetry import get_hub

        telemetry = get_hub()
    if executor is not None and executor != "serial":
        from ..execpool import ProcessPoolTrialExecutor, run_trials_parallel

        owns_pool = False
        if executor == "process":
            executor = ProcessPoolTrialExecutor(
                trainable, max_workers=max_workers, telemetry=telemetry)
            owns_pool = True
        elif not isinstance(executor, ProcessPoolTrialExecutor):
            raise ValueError(
                f"executor must be 'serial', 'process', or a "
                f"ProcessPoolTrialExecutor, got {executor!r}"
            )
        try:
            parallel_trials = run_trials_parallel(
                executor, list(search_alg.configurations()),
                scheduler=scheduler, retry_policy=retry_policy,
                metric=metric, mode=mode, raise_on_error=raise_on_error,
                search_alg=search_alg, telemetry=telemetry,
                progress=progress,
            )
        finally:
            if owns_pool:
                executor.shutdown()
        return ExperimentAnalysis(parallel_trials)
    m_trials = telemetry.metrics.counter(
        "tune_trials_total", "trials finished by terminal status",
        ("status",))
    m_started = telemetry.metrics.counter(
        "tune_trials_started_total", "trials handed to the trainable")
    m_retries = telemetry.metrics.counter(
        "tune_retries_total", "crashed trial attempts that were retried")
    m_restores = telemetry.metrics.counter(
        "tune_restores_total", "retries that resumed from a checkpoint")
    trials: list[Trial] = []
    # NB: configurations() must stay lazy -- adaptive algorithms (TPE)
    # propose each config from the observations fed back so far.
    for i, config in enumerate(search_alg.configurations()):
        m_started.inc()
        trial = Trial(trial_id=f"trial_{i:04d}", config=dict(config))
        trials.append(trial)
        trial.status = TrialStatus.RUNNING
        t0 = time.perf_counter()
        final = None
        last_checkpoint: CheckpointHandle | None = None
        with telemetry.tracer.span(trial.trial_id, category="trial",
                                   **{k: str(v) for k, v in config.items()}):
            for attempt in range(retry_policy.max_attempts):
                trial.retries = attempt
                resume_from = None
                if attempt:
                    m_retries.inc()
                    delay = retry_policy.delay(attempt)
                    if delay > 0:
                        time.sleep(delay)
                    if (retry_policy.resume == "checkpoint"
                            and last_checkpoint is not None):
                        resume_from = last_checkpoint
                        trial.restored_epoch = last_checkpoint.epoch
                        # keep rows from checkpointed (durable) epochs;
                        # the resumed attempt re-reports everything after
                        keep = last_checkpoint.epoch
                        trial.results = [
                            r for r in trial.results
                            if r.get("epoch", keep + 1) <= keep
                        ]
                        scheduler.on_trial_retry(trial, keep_up_to=keep)
                        m_restores.inc()
                    else:
                        trial.restored_epoch = None
                        trial.results.clear()
                        scheduler.on_trial_retry(trial, keep_up_to=None)
                reporter = Reporter(trial, scheduler, telemetry=telemetry,
                                    resume_from=resume_from)
                try:
                    final = trainable(dict(config), reporter)
                except StopTrial:
                    trial.status = TrialStatus.STOPPED
                    final = None
                    break
                except Exception as exc:
                    if raise_on_error:
                        raise
                    trial.status = TrialStatus.ERROR
                    trial.error = f"{type(exc).__name__}: {exc}"
                    final = None
                    last_checkpoint = reporter.last_checkpoint
                    continue  # retry if attempts remain
                else:
                    trial.status = (
                        TrialStatus.STOPPED
                        if reporter.stopped
                        else TrialStatus.TERMINATED
                    )
                    trial.error = None
                    break
        trial.runtime_s = time.perf_counter() - t0
        m_trials.labels(status=trial.status.value).inc()
        if isinstance(final, dict):
            trial.final = final
        scheduler.on_trial_complete(trial)
        if metric is not None:
            score = trial.best_metric(metric, mode)
            if score is not None:
                search_alg.observe(config, score)
        if progress is not None:
            progress.update(trials, now=telemetry.tracer.now())
    if progress is not None:
        progress.finish(trials)
    return ExperimentAnalysis(trials)
