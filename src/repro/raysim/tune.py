"""Trial runner (the Ray Tune analogue).

The paper adapts its training loop to "the standard Ray API": a
*trainable* function taking a hyper-parameter dict, plus a *reporting
callback* delivering per-epoch results (Section III-B2); ``Tune.Run``
then executes the batch of experiments.  This module reproduces that
contract:

>>> def trainable(config, reporter):
...     for epoch in range(config["epochs"]):
...         dice = train_one_epoch(...)
...         if not reporter(epoch=epoch, dice=dice):
...             break                       # scheduler said stop (ASHA)
...     return {"dice": dice}
>>> analysis = tune_run(trainable, search_alg=GridSearch(space))
>>> analysis.best_trial("dice").config

``tune_run`` executes trials in-process (functional reproduction); the
*timing* of concurrent trial placement at cluster scale is what
``repro.core.experiment_parallel`` simulates with the event simulator,
using this module's Trial/scheduler data model.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable

from .search import SearchAlgorithm

__all__ = [
    "TrialStatus",
    "Trial",
    "Reporter",
    "TrialScheduler",
    "FIFOScheduler",
    "ASHAScheduler",
    "ExperimentAnalysis",
    "tune_run",
    "StopTrial",
]


class StopTrial(Exception):
    """Raisable from a trainable to end the trial early (counts as
    TERMINATED, not ERROR)."""


class TrialStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    TERMINATED = "terminated"
    STOPPED = "stopped"   # early-stopped by a scheduler
    ERROR = "error"


@dataclass
class Trial:
    """One hyper-parameter configuration's lifecycle."""

    trial_id: str
    config: dict
    status: TrialStatus = TrialStatus.PENDING
    results: list[dict] = field(default_factory=list)
    final: dict | None = None
    error: str | None = None
    runtime_s: float = 0.0
    retries: int = 0

    def last_result(self) -> dict | None:
        return self.results[-1] if self.results else None

    def best_metric(self, metric: str, mode: str = "max") -> float | None:
        vals = [r[metric] for r in self.results if metric in r]
        if self.final and metric in self.final:
            vals.append(self.final[metric])
        if not vals:
            return None
        return max(vals) if mode == "max" else min(vals)


class TrialScheduler:
    """Decides, per reported result, whether a trial continues."""

    CONTINUE = "continue"
    STOP = "stop"

    def on_result(self, trial: Trial, result: dict) -> str:
        return self.CONTINUE

    def on_trial_complete(self, trial: Trial) -> None:
        pass


class FIFOScheduler(TrialScheduler):
    """Run every trial to completion (the paper's setting: all 250-epoch
    experiments run fully)."""


class ASHAScheduler(TrialScheduler):
    """Asynchronous Successive Halving (Li et al.), the early-stopping
    scheduler Ray Tune pairs with grid/random search.

    A trial reaching rung ``r`` (time ``grace_period * reduction**r``)
    survives only if its metric is within the top ``1/reduction``
    fraction of everything seen at that rung so far.
    """

    def __init__(
        self,
        metric: str,
        mode: str = "max",
        time_attr: str = "epoch",
        grace_period: int = 10,
        reduction_factor: int = 3,
        max_t: int = 250,
    ):
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        if grace_period < 1 or reduction_factor < 2 or max_t < grace_period:
            raise ValueError("invalid ASHA parameters")
        self.metric = metric
        self.mode = mode
        self.time_attr = time_attr
        self.grace = grace_period
        self.rf = reduction_factor
        self.max_t = max_t
        # rung level -> list of recorded metric values
        self._rungs: dict[int, list[float]] = {}
        r = 0
        t = grace_period
        self.rung_times = []
        while t < max_t:
            self.rung_times.append(t)
            r += 1
            t = grace_period * reduction_factor**r

    def on_result(self, trial: Trial, result: dict) -> str:
        if self.metric not in result or self.time_attr not in result:
            return self.CONTINUE
        t = result[self.time_attr]
        val = float(result[self.metric])
        for level, rung_t in enumerate(self.rung_times):
            if t == rung_t:
                recorded = self._rungs.setdefault(level, [])
                recorded.append(val)
                ordered = sorted(recorded, reverse=(self.mode == "max"))
                k = max(1, len(ordered) // self.rf)
                cutoff = ordered[k - 1]
                survives = (
                    val >= cutoff if self.mode == "max" else val <= cutoff
                )
                if not survives:
                    return self.STOP
        return self.CONTINUE


class HyperbandScheduler(TrialScheduler):
    """Asynchronous Hyperband: trials are dealt round-robin into
    brackets, each bracket running successive halving with a different
    grace period -- aggressive early stopping for most trials while one
    bracket guards against "slow starters" (the standard Ray Tune
    ``HyperBandScheduler`` trade-off).
    """

    def __init__(
        self,
        metric: str,
        mode: str = "max",
        time_attr: str = "epoch",
        max_t: int = 250,
        reduction_factor: int = 3,
        num_brackets: int = 3,
    ):
        if num_brackets < 1:
            raise ValueError("num_brackets must be >= 1")
        self.metric, self.mode, self.time_attr = metric, mode, time_attr
        self.max_t = max_t
        self.brackets = []
        for b in range(num_brackets):
            grace = max(1, max_t // (reduction_factor ** (num_brackets - b)))
            self.brackets.append(
                ASHAScheduler(
                    metric, mode=mode, time_attr=time_attr,
                    grace_period=grace, reduction_factor=reduction_factor,
                    max_t=max_t,
                )
            )
        self._assignment: dict[str, int] = {}
        self._next = 0

    def bracket_of(self, trial: Trial) -> ASHAScheduler:
        idx = self._assignment.get(trial.trial_id)
        if idx is None:
            idx = self._next % len(self.brackets)
            self._assignment[trial.trial_id] = idx
            self._next += 1
        return self.brackets[idx]

    def on_result(self, trial: Trial, result: dict) -> str:
        return self.bracket_of(trial).on_result(trial, result)


class Reporter:
    """The per-trial reporting callback handed to trainables.

    Calling it records a result row and returns True while the scheduler
    wants the trial to continue.
    """

    def __init__(self, trial: Trial, scheduler: TrialScheduler,
                 telemetry=None):
        self._trial = trial
        self._scheduler = scheduler
        self.stopped = False
        if telemetry is None:
            from ..telemetry import get_hub

            telemetry = get_hub()
        self._m_decisions = telemetry.metrics.counter(
            "scheduler_decisions_total",
            "per-report scheduler continue/stop decisions", ("decision",))

    def __call__(self, **metrics) -> bool:
        self._trial.results.append(dict(metrics))
        decision = self._scheduler.on_result(self._trial, metrics)
        self._m_decisions.labels(decision=decision).inc()
        if decision == TrialScheduler.STOP:
            self.stopped = True
            return False
        return True


class ExperimentAnalysis:
    """Results of a ``tune_run``: the trial set plus query helpers."""

    def __init__(self, trials: list[Trial]):
        self.trials = trials

    def best_trial(self, metric: str, mode: str = "max") -> Trial:
        scored = [
            (t, t.best_metric(metric, mode))
            for t in self.trials
            if t.best_metric(metric, mode) is not None
        ]
        if not scored:
            raise ValueError(f"no trial reported metric {metric!r}")
        key = (lambda tv: tv[1]) if mode == "min" else (lambda tv: -tv[1])
        return min(scored, key=key)[0]

    def best_config(self, metric: str, mode: str = "max") -> dict:
        return self.best_trial(metric, mode).config

    def results_table(self, metric: str, mode: str = "max") -> list[dict]:
        rows = []
        for t in self.trials:
            rows.append(
                {
                    "trial_id": t.trial_id,
                    "status": t.status.value,
                    "config": dict(t.config),
                    metric: t.best_metric(metric, mode),
                    "epochs_run": len(t.results),
                }
            )
        return rows

    def num_errors(self) -> int:
        return sum(1 for t in self.trials if t.status is TrialStatus.ERROR)


def tune_run(
    trainable: Callable[[dict, Reporter], dict | None],
    search_alg: SearchAlgorithm,
    scheduler: TrialScheduler | None = None,
    metric: str | None = None,
    mode: str = "max",
    raise_on_error: bool = False,
    max_retries: int = 0,
    telemetry=None,
) -> ExperimentAnalysis:
    """Execute every configuration the search algorithm proposes.

    The trainable receives ``(config, reporter)`` and may return a final
    metrics dict.  Adaptive search algorithms are fed each trial's best
    ``metric`` via :meth:`SearchAlgorithm.observe`.  ``max_retries``
    re-runs a crashed trial from scratch (the fault-tolerance knob
    preempted cluster runs need); only the final attempt's status is
    recorded, with the retry count in ``Trial.final``-independent field
    ``retries``.  ``telemetry`` (default: the process hub) receives one
    span per trial plus trial-status / pending-queue metrics.
    """
    scheduler = scheduler or FIFOScheduler()
    if telemetry is None:
        from ..telemetry import get_hub

        telemetry = get_hub()
    m_trials = telemetry.metrics.counter(
        "tune_trials_total", "trials finished by terminal status",
        ("status",))
    m_started = telemetry.metrics.counter(
        "tune_trials_started_total", "trials handed to the trainable")
    trials: list[Trial] = []
    # NB: configurations() must stay lazy -- adaptive algorithms (TPE)
    # propose each config from the observations fed back so far.
    for i, config in enumerate(search_alg.configurations()):
        m_started.inc()
        trial = Trial(trial_id=f"trial_{i:04d}", config=dict(config))
        trials.append(trial)
        trial.status = TrialStatus.RUNNING
        t0 = time.perf_counter()
        final = None
        with telemetry.tracer.span(trial.trial_id, category="trial",
                                   **{k: str(v) for k, v in config.items()}):
            for attempt in range(max_retries + 1):
                trial.results.clear()
                trial.retries = attempt
                reporter = Reporter(trial, scheduler, telemetry=telemetry)
                try:
                    final = trainable(dict(config), reporter)
                except StopTrial:
                    trial.status = TrialStatus.STOPPED
                    final = None
                    break
                except Exception as exc:
                    if raise_on_error:
                        raise
                    trial.status = TrialStatus.ERROR
                    trial.error = f"{type(exc).__name__}: {exc}"
                    final = None
                    continue  # retry if attempts remain
                else:
                    trial.status = (
                        TrialStatus.STOPPED
                        if reporter.stopped
                        else TrialStatus.TERMINATED
                    )
                    trial.error = None
                    break
        trial.runtime_s = time.perf_counter() - t0
        m_trials.labels(status=trial.status.value).inc()
        if isinstance(final, dict):
            trial.final = final
        scheduler.on_trial_complete(trial)
        if metric is not None:
            score = trial.best_metric(metric, mode)
            if score is not None:
                search_alg.observe(config, score)
    return ExperimentAnalysis(trials)
