"""``repro.raysim`` -- a Ray-like runtime.

Stands in for Ray 1.4.1: object store + remote tasks + actors
(:mod:`~repro.raysim.remote`, :mod:`~repro.raysim.actor`), a cluster
resource registry with pack/spread GPU placement
(:mod:`~repro.raysim.cluster`), synchronous data-parallel SGD with exact
ring all-reduce and optional sync-BatchNorm (:mod:`~repro.raysim.sgd`),
a Tune-like trial runner with FIFO/ASHA scheduling
(:mod:`~repro.raysim.tune`), grid/random/TPE-lite search
(:mod:`~repro.raysim.search`) and placement/makespan policies
(:mod:`~repro.raysim.scheduler`).
"""

from . import actor as _actor  # noqa: F401 -- attaches RaySession.actor
from .actor import ActorClass, ActorHandle
from .cluster import Allocation, InsufficientResources, NodeResources, RayCluster
from .object_store import ObjectRef, ObjectStore, ObjectStoreError
from .placement import STRATEGIES, PlacementGroup, create_placement_group
from .remote import RaySession, RemoteFunction, TaskError
from .scheduler import (
    PlacementResult,
    fifo_schedule,
    lpt_schedule,
    makespan_lower_bound,
)
from ..fault_tolerance import FaultInjector, InjectedFault
from .search import GridSearch, RandomSearch, SearchAlgorithm, TPELite
from .sgd import DataParallelTrainer, SyncGroup
from .tune import (
    ASHAScheduler,
    CheckpointHandle,
    ExperimentAnalysis,
    FIFOScheduler,
    HyperbandScheduler,
    Reporter,
    RetryPolicy,
    StopTrial,
    Trial,
    TrialScheduler,
    TrialStatus,
    tune_run,
)

__all__ = [
    "ObjectRef",
    "ObjectStore",
    "ObjectStoreError",
    "RaySession",
    "RemoteFunction",
    "TaskError",
    "ActorClass",
    "ActorHandle",
    "RayCluster",
    "NodeResources",
    "Allocation",
    "InsufficientResources",
    "DataParallelTrainer",
    "SyncGroup",
    "GridSearch",
    "RandomSearch",
    "TPELite",
    "SearchAlgorithm",
    "Trial",
    "TrialStatus",
    "TrialScheduler",
    "FIFOScheduler",
    "ASHAScheduler",
    "HyperbandScheduler",
    "Reporter",
    "ExperimentAnalysis",
    "tune_run",
    "StopTrial",
    "RetryPolicy",
    "CheckpointHandle",
    "FaultInjector",
    "InjectedFault",
    "PlacementResult",
    "fifo_schedule",
    "lpt_schedule",
    "makespan_lower_bound",
    "PlacementGroup",
    "create_placement_group",
    "STRATEGIES",
]
