"""Trial-to-worker placement policies and makespan computation.

Experiment parallelism's elapsed time is the *makespan* of placing the
search's trials onto single-GPU workers.  Ray Tune's behaviour is
greedy FIFO: trials start in submission order, each on the earliest
available GPU.  LPT (longest-processing-time-first) is the classic
makespan heuristic, provided for the scheduling ablation (E9).

These are pure functions over (durations, worker count) so they can be
property-tested against the makespan lower bounds; the event-simulator
execution in ``repro.core.experiment_parallel`` must agree with them
exactly (and a test asserts it does).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["PlacementResult", "fifo_schedule", "lpt_schedule", "makespan_lower_bound"]


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of a static schedule."""

    makespan: float
    # per-trial (worker, start, end), in input order
    assignments: tuple[tuple[int, float, float], ...]

    def worker_loads(self, num_workers: int) -> list[float]:
        loads = [0.0] * num_workers
        for w, s, e in self.assignments:
            loads[w] += e - s
        return loads


def _greedy(durations, order, num_workers: int, per_trial_overhead: float,
            policy: str = "fifo", telemetry=None):
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if any(d < 0 for d in durations):
        raise ValueError("durations must be non-negative")
    if telemetry is None:
        from ..telemetry import get_hub

        telemetry = get_hub()
    m_placements = telemetry.metrics.counter(
        "scheduler_placements_total", "trial-to-worker placements made",
        ("policy",)).labels(policy=policy)
    m_queue = telemetry.metrics.histogram(
        "scheduler_queue_depth", "trials still waiting at each placement",
        ("policy",),
        buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128)).labels(policy=policy)
    # (available_time, worker_id) min-heap
    heap = [(0.0, w) for w in range(num_workers)]
    heapq.heapify(heap)
    assignments: list[tuple[int, float, float] | None] = [None] * len(durations)
    for placed, idx in enumerate(order):
        avail, w = heapq.heappop(heap)
        start = avail
        end = start + per_trial_overhead + durations[idx]
        assignments[idx] = (w, start, end)
        heapq.heappush(heap, (end, w))
        m_placements.inc()
        m_queue.observe(len(durations) - placed - 1)
    makespan = max((a[2] for a in assignments), default=0.0)
    telemetry.metrics.gauge(
        "scheduler_makespan_seconds", "makespan of the last schedule",
        ("policy",)).labels(policy=policy).set(makespan)
    return PlacementResult(makespan=makespan, assignments=tuple(assignments))


def fifo_schedule(
    durations, num_workers: int, per_trial_overhead: float = 0.0,
    telemetry=None,
) -> PlacementResult:
    """Greedy earliest-available-worker in submission order (Ray Tune)."""
    return _greedy(durations, range(len(durations)), num_workers,
                   per_trial_overhead, policy="fifo", telemetry=telemetry)


def lpt_schedule(
    durations, num_workers: int, per_trial_overhead: float = 0.0,
    telemetry=None,
) -> PlacementResult:
    """Longest-processing-time-first; 4/3-approximate minimum makespan."""
    order = sorted(range(len(durations)), key=lambda i: -durations[i])
    return _greedy(durations, order, num_workers, per_trial_overhead,
                   policy="lpt", telemetry=telemetry)


def makespan_lower_bound(durations, num_workers: int,
                         per_trial_overhead: float = 0.0) -> float:
    """max(longest trial, total work / workers) -- no schedule beats it."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    padded = [d + per_trial_overhead for d in durations]
    if not padded:
        return 0.0
    return max(max(padded), sum(padded) / num_workers)
