"""Placement groups: reserving resource bundles with a strategy.

Ray's placement groups are how multi-GPU work (the paper's data-parallel
trials) reserves its devices atomically before launch: a list of
*bundles* (each e.g. ``{"GPU": 1}``) plus a strategy controlling their
spread over nodes.

* ``STRICT_PACK`` -- all bundles on one node (MirroredStrategy: the
  replicas must share NVLink);
* ``PACK``        -- as few nodes as possible (Ray SGD across nodes);
* ``SPREAD``      -- balanced across nodes, best effort;
* ``STRICT_SPREAD`` -- one bundle per node, or fail.
"""

from __future__ import annotations


from dataclasses import dataclass, field

from .cluster import InsufficientResources, RayCluster

__all__ = ["PlacementGroup", "create_placement_group", "STRATEGIES"]

STRATEGIES = ("STRICT_PACK", "PACK", "SPREAD", "STRICT_SPREAD")


@dataclass
class PlacementGroup:
    """A granted reservation; release with :meth:`remove`."""

    strategy: str
    bundles: list[dict]
    # node id per bundle, parallel to `bundles`
    bundle_nodes: list[int] = field(default_factory=list)
    _cluster: RayCluster | None = None
    _released: bool = False

    def nodes(self) -> list[int]:
        return sorted(set(self.bundle_nodes))

    @property
    def num_bundles(self) -> int:
        return len(self.bundles)

    def remove(self) -> None:
        """Return the reserved resources (idempotent)."""
        if self._released or self._cluster is None:
            return
        for node_id, bundle in zip(self.bundle_nodes, self.bundles):
            self._cluster.nodes[node_id].release(bundle)
        self._released = True


def _gpu_count(bundle: dict) -> float:
    return float(bundle.get("GPU", 0.0))


def create_placement_group(
    cluster: RayCluster,
    bundles: list[dict],
    strategy: str = "PACK",
) -> PlacementGroup:
    """Reserve ``bundles`` on ``cluster`` atomically.

    Either every bundle is granted or none is (an
    :class:`InsufficientResources` is raised and the cluster state is
    unchanged) -- the all-or-nothing semantics that prevent deadlock
    when several multi-GPU trials race for devices.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; one of {STRATEGIES}")
    if not bundles:
        raise ValueError("need at least one bundle")
    for b in bundles:
        if not b or any(v <= 0 for v in b.values()):
            raise ValueError(f"invalid bundle {b!r}")

    assignment: list[int] = [-1] * len(bundles)
    # Work on a copy of the free vectors so failure leaves no residue.
    free = [dict(n.free) for n in cluster.nodes]

    def fits(node_idx: int, bundle: dict) -> bool:
        return all(free[node_idx].get(k, 0.0) >= v for k, v in bundle.items())

    def take(node_idx: int, bundle: dict) -> None:
        for k, v in bundle.items():
            free[node_idx][k] -= v

    order = range(len(bundles))
    if strategy == "STRICT_PACK":
        placed = False
        for ni in range(len(cluster.nodes)):
            trial_free = dict(free[ni])
            ok = True
            for b in bundles:
                if all(trial_free.get(k, 0.0) >= v for k, v in b.items()):
                    for k, v in b.items():
                        trial_free[k] -= v
                else:
                    ok = False
                    break
            if ok:
                for i in order:
                    assignment[i] = ni
                    take(ni, bundles[i])
                placed = True
                break
        if not placed:
            raise InsufficientResources(
                "STRICT_PACK: no single node fits all bundles"
            )
    elif strategy == "PACK":
        for i in order:
            # densest node that fits -> fewest nodes overall
            candidates = [
                ni for ni in range(len(cluster.nodes)) if fits(ni, bundles[i])
            ]
            if not candidates:
                raise InsufficientResources(f"PACK: bundle {i} does not fit")
            ni = min(candidates, key=lambda n: free[n].get("GPU", 0.0))
            assignment[i] = ni
            take(ni, bundles[i])
    elif strategy in ("SPREAD", "STRICT_SPREAD"):
        used_nodes: set[int] = set()
        for i in order:
            candidates = [
                ni for ni in range(len(cluster.nodes)) if fits(ni, bundles[i])
            ]
            if strategy == "STRICT_SPREAD":
                candidates = [ni for ni in candidates if ni not in used_nodes]
            if not candidates:
                raise InsufficientResources(
                    f"{strategy}: bundle {i} cannot be placed"
                )
            # emptiest node first -> balanced spread
            ni = max(candidates, key=lambda n: free[n].get("GPU", 0.0))
            assignment[i] = ni
            used_nodes.add(ni)
            take(ni, bundles[i])

    # Commit: acquire for real (cannot fail -- we checked against copies).
    for i, ni in enumerate(assignment):
        cluster.nodes[ni].acquire(bundles[i])
    return PlacementGroup(
        strategy=strategy,
        bundles=[dict(b) for b in bundles],
        bundle_nodes=assignment,
        _cluster=cluster,
    )
