"""In-memory object store (the Ray plasma-store analogue).

Values are stored once and referenced by :class:`ObjectRef`; ``get``
resolves a ref (or nested lists of refs).  A capacity bound with
LRU eviction models the paper-scale concern that full-volume batches
are large objects whose lifetime must be managed.
"""

from __future__ import annotations

import itertools
import sys
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["ObjectRef", "ObjectStore", "ObjectStoreError"]

_ref_counter = itertools.count()


class ObjectStoreError(KeyError):
    """Missing or evicted object."""


@dataclass(frozen=True)
class ObjectRef:
    """Opaque handle to a stored value."""

    ref_id: int
    owner: str = "driver"
    _repr_hint: str = field(default="", compare=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObjectRef({self.ref_id}{', ' + self._repr_hint if self._repr_hint else ''})"


def _sizeof(value) -> int:
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    return sys.getsizeof(value)


class ObjectStore:
    """LRU-bounded key-value store for task results and shared data."""

    def __init__(self, capacity_bytes: int | None = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity must be positive (or None)")
        self.capacity_bytes = capacity_bytes
        self._data: "OrderedDict[int, object]" = OrderedDict()
        self._sizes: dict[int, int] = {}
        self.bytes_used = 0
        self.evictions = 0
        self.puts = 0
        self.hits = 0

    def reserve(self, owner: str = "driver") -> ObjectRef:
        """Mint a ref with no value yet (fulfilled later by a task)."""
        return ObjectRef(next(_ref_counter), owner=owner)

    def fulfill(self, ref: ObjectRef, value) -> ObjectRef:
        """Store ``value`` under a previously reserved ref."""
        size = _sizeof(value)
        if self.capacity_bytes is not None and size > self.capacity_bytes:
            raise ObjectStoreError(
                f"object of {size} bytes exceeds store capacity "
                f"{self.capacity_bytes}"
            )
        self._evict_until_fits(size)
        self._data[ref.ref_id] = value
        self._sizes[ref.ref_id] = size
        self.bytes_used += size
        self.puts += 1
        return ref

    def put(self, value, owner: str = "driver") -> ObjectRef:
        ref = ObjectRef(next(_ref_counter), owner=owner,
                        _repr_hint=type(value).__name__)
        size = _sizeof(value)
        if self.capacity_bytes is not None and size > self.capacity_bytes:
            raise ObjectStoreError(
                f"object of {size} bytes exceeds store capacity "
                f"{self.capacity_bytes}"
            )
        self._evict_until_fits(size)
        self._data[ref.ref_id] = value
        self._sizes[ref.ref_id] = size
        self.bytes_used += size
        self.puts += 1
        return ref

    def _evict_until_fits(self, incoming: int) -> None:
        if self.capacity_bytes is None:
            return
        while self.bytes_used + incoming > self.capacity_bytes and self._data:
            old_id, _ = self._data.popitem(last=False)
            self.bytes_used -= self._sizes.pop(old_id)
            self.evictions += 1

    def get(self, ref):
        """Resolve a ref, a list/tuple of refs, or pass through values."""
        if isinstance(ref, (list, tuple)):
            return type(ref)(self.get(r) for r in ref)
        if not isinstance(ref, ObjectRef):
            return ref
        try:
            value = self._data[ref.ref_id]
        except KeyError:
            raise ObjectStoreError(
                f"{ref!r} not found (evicted or never stored)"
            ) from None
        self._data.move_to_end(ref.ref_id)  # LRU touch
        self.hits += 1
        return value

    def contains(self, ref: ObjectRef) -> bool:
        return ref.ref_id in self._data

    def delete(self, ref: ObjectRef) -> None:
        if ref.ref_id in self._data:
            del self._data[ref.ref_id]
            self.bytes_used -= self._sizes.pop(ref.ref_id)

    def __len__(self) -> int:
        return len(self._data)
