"""Hyper-parameter search algorithms.

The paper's search space is "the cross-product of the different values
for each option in the configuration" (Section III-B2), i.e. grid
search; random search and a TPE-lite sampler are provided as the
standard alternatives Ray Tune would offer.
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

__all__ = ["SearchAlgorithm", "GridSearch", "RandomSearch", "TPELite"]


class SearchAlgorithm:
    """Produces trial configurations; may consume results to adapt."""

    def configurations(self) -> Iterator[dict]:
        raise NotImplementedError

    def observe(self, config: dict, score: float) -> None:
        """Feedback hook (no-op for non-adaptive algorithms)."""


class GridSearch(SearchAlgorithm):
    """Exhaustive cross-product of a ``{name: [values...]}`` space."""

    def __init__(self, space: dict[str, list]):
        if not space:
            raise ValueError("search space is empty")
        for k, v in space.items():
            if not isinstance(v, (list, tuple)) or len(v) == 0:
                raise ValueError(f"grid axis {k!r} must be a non-empty list")
        self.space = {k: list(v) for k, v in space.items()}

    def __len__(self) -> int:
        n = 1
        for v in self.space.values():
            n *= len(v)
        return n

    def configurations(self) -> Iterator[dict]:
        keys = list(self.space)
        for combo in itertools.product(*(self.space[k] for k in keys)):
            yield dict(zip(keys, combo))


class RandomSearch(SearchAlgorithm):
    """Independent draws from per-parameter samplers.

    Each space entry is either a list (uniform choice) or a callable
    ``rng -> value``.
    """

    def __init__(self, space: dict, num_samples: int, seed: int | None = 0):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.space = dict(space)
        self.num_samples = num_samples
        self.seed = seed

    def __len__(self) -> int:
        return self.num_samples

    def _draw(self, sampler, rng: np.random.Generator):
        if callable(sampler):
            return sampler(rng)
        return sampler[int(rng.integers(len(sampler)))]

    def configurations(self) -> Iterator[dict]:
        rng = np.random.default_rng(self.seed)
        for _ in range(self.num_samples):
            yield {k: self._draw(v, rng) for k, v in self.space.items()}


class TPELite(SearchAlgorithm):
    """A minimal Tree-of-Parzen-Estimators-flavoured adaptive sampler.

    Works over discrete axes only: after ``startup_trials`` random
    draws, it splits observed configs into good/bad halves by score and
    samples each axis value proportionally to
    ``(count_good + 1) / (count_bad + 1)`` -- the TPE density-ratio idea
    reduced to categorical axes.  Not a claim of the paper; included as
    the natural "what Ray Tune users would reach for next" extension.
    """

    def __init__(
        self,
        space: dict[str, list],
        num_samples: int,
        mode: str = "max",
        startup_trials: int = 5,
        seed: int | None = 0,
    ):
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.space = {k: list(v) for k, v in space.items()}
        self.num_samples = num_samples
        self.mode = mode
        self.startup_trials = startup_trials
        self.rng = np.random.default_rng(seed)
        self.history: list[tuple[dict, float]] = []

    def __len__(self) -> int:
        return self.num_samples

    def observe(self, config: dict, score: float) -> None:
        self.history.append((dict(config), float(score)))

    def _sample_axis(self, name: str) -> object:
        values = self.space[name]
        if len(self.history) < self.startup_trials:
            return values[int(self.rng.integers(len(values)))]
        ordered = sorted(
            self.history, key=lambda t: t[1], reverse=(self.mode == "max")
        )
        split = max(1, len(ordered) // 2)
        good = ordered[:split]
        bad = ordered[split:]
        weights = []
        for v in values:
            g = sum(1 for c, _ in good if c.get(name) == v)
            b = sum(1 for c, _ in bad if c.get(name) == v)
            weights.append((g + 1.0) / (b + 1.0))
        w = np.asarray(weights)
        w = w / w.sum()
        return values[int(self.rng.choice(len(values), p=w))]

    def configurations(self) -> Iterator[dict]:
        for _ in range(self.num_samples):
            yield {k: self._sample_axis(k) for k in self.space}
