"""Calibration of the cost model against the paper's Table I.

The cost model has a small number of non-physical constants (sustained
GPU efficiency, straggler sigma, framework overheads, startup costs).
:func:`fit_to_table1` fits them once by bounded least squares on the
log-ratios of modelled vs reported elapsed times for all 14 Table I
cells; the resulting profile is frozen as
:data:`MARENOSTRUM_CTE_PROFILE` and used by every benchmark.

EXPERIMENTS.md records the per-cell residuals.  The point of the
exercise is *not* to re-measure V100 step times -- it is that with one
consistent parameter set, both methods' scaling curves (and the gap
between them) emerge from the model's structure: batch quantisation,
max-of-n stragglers, hierarchical all-reduce, and trial-placement
makespans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .costs import CostModelParams, StepCostModel
from .speedup import (
    PAPER_GPU_COUNTS,
    data_parallel_search_time,
    experiment_parallel_search_time,
    paper_search_grid,
)

__all__ = [
    "TABLE1_DATA_PARALLEL_S",
    "TABLE1_EXPERIMENT_PARALLEL_S",
    "TABLE1_DP_SPEEDUPS",
    "TABLE1_EP_SPEEDUPS",
    "CalibrationResult",
    "fit_to_table1",
    "MARENOSTRUM_CTE_PROFILE",
    "calibrated_model",
]

# Table I, elapsed times converted to seconds.
TABLE1_DATA_PARALLEL_S = {
    1: 159482,   # 44:18:02
    2: 83368,    # 23:09:28
    4: 54575,    # 15:09:35
    8: 27672,    # 7:41:12
    12: 21599,   # 5:59:59
    16: 16010,   # 4:26:50
    32: 12104,   # 3:21:44
}
TABLE1_EXPERIMENT_PARALLEL_S = {
    1: 159619,   # 44:20:19
    2: 80679,    # 22:24:39
    4: 41540,    # 11:32:20
    8: 25397,    # 7:03:17
    12: 20122,   # 5:35:22
    16: 15114,   # 4:11:54
    32: 10506,   # 2:55:06
}
TABLE1_DP_SPEEDUPS = {1: 1.00, 2: 1.91, 4: 2.92, 8: 5.76, 12: 7.38,
                      16: 9.96, 32: 13.18}
TABLE1_EP_SPEEDUPS = {1: 1.00, 2: 1.98, 4: 3.84, 8: 6.28, 12: 7.93,
                      16: 10.56, 32: 15.19}

# Free parameters: (name, lower, upper).
_FIT_SPEC = [
    ("gpu_efficiency", 0.2, 0.95),
    ("straggler_sigma", 0.0, 0.5),
    ("mirrored_overhead_s", 0.0, 1.0),
    ("internode_overhead_s", 0.0, 0.5),
    ("epoch_fixed_s", 0.0, 120.0),
    ("startup_base_s", 0.0, 1800.0),
    ("startup_per_node_s", 0.0, 900.0),
    ("tune_trial_overhead_s", 0.0, 3600.0),
]


@dataclass(frozen=True)
class CalibrationResult:
    params: CostModelParams
    residuals: dict[str, float]      # per-cell log-ratio model/paper
    max_abs_pct_error: float
    mean_abs_pct_error: float


def _model_times(params: CostModelParams) -> tuple[dict[int, float], dict[int, float]]:
    model = StepCostModel(params=params)
    grid = paper_search_grid()
    dp = {
        n: data_parallel_search_time(model, grid, n)
        for n in PAPER_GPU_COUNTS
    }
    ep = {
        n: experiment_parallel_search_time(model, grid, n)
        for n in PAPER_GPU_COUNTS
    }
    return dp, ep


def _residual_vector(values: np.ndarray) -> np.ndarray:
    names = [name for name, _, _ in _FIT_SPEC]
    params = CostModelParams(**dict(zip(names, values)))
    dp, ep = _model_times(params)
    res = []
    for n in PAPER_GPU_COUNTS:
        res.append(np.log(dp[n] / TABLE1_DATA_PARALLEL_S[n]))
        res.append(np.log(ep[n] / TABLE1_EXPERIMENT_PARALLEL_S[n]))
    return np.asarray(res)


def fit_to_table1(max_nfev: int = 400) -> CalibrationResult:
    """Bounded least-squares fit of the free constants to Table I."""
    from scipy.optimize import least_squares

    x0 = np.array([(lo + hi) / 2 for _, lo, hi in _FIT_SPEC])
    # Sensible starting point near physical expectations.
    start = dict(gpu_efficiency=0.5, straggler_sigma=0.1,
                 mirrored_overhead_s=0.1, internode_overhead_s=0.02,
                 epoch_fixed_s=10.0, startup_base_s=120.0,
                 startup_per_node_s=60.0, tune_trial_overhead_s=300.0)
    for i, (name, lo, hi) in enumerate(_FIT_SPEC):
        x0[i] = np.clip(start[name], lo, hi)
    sol = least_squares(
        _residual_vector,
        x0,
        bounds=([lo for _, lo, _ in _FIT_SPEC], [hi for _, _, hi in _FIT_SPEC]),
        max_nfev=max_nfev,
    )
    names = [name for name, _, _ in _FIT_SPEC]
    params = CostModelParams(**dict(zip(names, sol.x)))
    return summarize(params)


def summarize(params: CostModelParams) -> CalibrationResult:
    """Per-cell residual report for a parameter set."""
    dp, ep = _model_times(params)
    residuals: dict[str, float] = {}
    for n in PAPER_GPU_COUNTS:
        residuals[f"dp_{n}"] = float(np.log(dp[n] / TABLE1_DATA_PARALLEL_S[n]))
        residuals[f"ep_{n}"] = float(
            np.log(ep[n] / TABLE1_EXPERIMENT_PARALLEL_S[n])
        )
    pct = {k: abs(np.expm1(v)) * 100 for k, v in residuals.items()}
    return CalibrationResult(
        params=params,
        residuals=residuals,
        max_abs_pct_error=float(max(pct.values())),
        mean_abs_pct_error=float(np.mean(list(pct.values()))),
    )


# Frozen result of fit_to_table1() -- regenerate with
# `python -m repro.perf.calibration`; the calibration test asserts this
# profile still matches Table I within tolerance (max cell error 8.4%,
# mean 3.3%).
#
# Two caveats the fit makes explicit:
# * ``gpu_efficiency`` is an *effective* throughput constant: the FLOPs
#   model counts convolution multiply-adds only, so BN / ReLU / pooling
#   / data movement costs are absorbed here -- 0.94 of peak under
#   conv-only counting corresponds to a realistic ~0.6 of peak under
#   full op counting.
# * the fit drives the per-step framework overheads and fixed startups
#   to ~0: Table I alone cannot separate them from the straggler term,
#   which lands at sigma = 0.25 (heavy jitter, consistent with a shared
#   GPFS-backed cluster).  They remain in the model for the ablation
#   sweeps (E9).
MARENOSTRUM_CTE_PROFILE = CostModelParams(
    gpu_efficiency=0.937787,
    straggler_sigma=0.252028,
    mirrored_overhead_s=0.0,
    internode_overhead_s=0.0,
    epoch_fixed_s=0.0,
    startup_base_s=0.0,
    startup_per_node_s=18.1123,
    tune_trial_overhead_s=0.0,
)


def calibrated_model() -> StepCostModel:
    """The cost model under the frozen MareNostrum-CTE calibration."""
    return StepCostModel(params=MARENOSTRUM_CTE_PROFILE)


if __name__ == "__main__":  # pragma: no cover - calibration utility
    result = fit_to_table1()
    print("fitted parameters:")
    for name, _, _ in _FIT_SPEC:
        print(f"  {name} = {getattr(result.params, name)!r},")
    print(f"max |error| = {result.max_abs_pct_error:.1f}%  "
          f"mean = {result.mean_abs_pct_error:.1f}%")
    for k, v in result.residuals.items():
        print(f"  {k}: {np.expm1(v) * 100:+.1f}%")
