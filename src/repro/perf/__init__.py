"""``repro.perf`` -- the calibrated performance model.

Analytic cost accounting for 3D U-Net training at cluster scale
(:mod:`~repro.perf.costs`), straggler order statistics
(:mod:`~repro.perf.straggler`), search-level elapsed-time / speed-up
tables (:mod:`~repro.perf.speedup`), the Table I calibration
(:mod:`~repro.perf.calibration`) and the benchmark-regression tracker
behind ``distmis bench compare`` (:mod:`~repro.perf.regression`).
"""

from .calibration import (
    MARENOSTRUM_CTE_PROFILE,
    TABLE1_DATA_PARALLEL_S,
    TABLE1_DP_SPEEDUPS,
    TABLE1_EP_SPEEDUPS,
    TABLE1_EXPERIMENT_PARALLEL_S,
    CalibrationResult,
    calibrated_model,
    fit_to_table1,
    summarize,
)
from .deployment import (
    GIB,
    PAPER_DATASET_BYTES,
    DatasetFootprint,
    DeploymentPlan,
    ServingCapacityPlan,
    ServingWorkload,
    plan_deployment,
    plan_serving_capacity,
    staging_time,
)
from .costs import (
    PAPER_EPOCHS,
    PAPER_SPATIAL,
    PAPER_TRAIN_SAMPLES,
    PAPER_VAL_SAMPLES,
    CostModelParams,
    StepCostModel,
    TrialConfig,
    conv3d_flops,
    unet3d_forward_flops,
    unet3d_param_count,
)
from .speedup import (
    PAPER_GPU_COUNTS,
    SpeedupRow,
    SpeedupTable,
    data_parallel_search_time,
    experiment_parallel_search_time,
    format_hms,
    paper_search_grid,
)
from .regression import (
    BenchRecord,
    CompareReport,
    MetricDelta,
    append_trajectory,
    bench_output_path,
    compare_records,
    host_metadata,
    hosts_comparable,
    is_smoke_env,
    load_bench_record,
    load_trajectory,
    metric_directions,
    validate_record,
)
from .straggler import expected_max_factor, sample_max_factor
from .trace_model import TrialBreakdown, epoch_breakdown, simulate_trial_timeline

__all__ = [
    "conv3d_flops",
    "unet3d_forward_flops",
    "unet3d_param_count",
    "TrialConfig",
    "CostModelParams",
    "StepCostModel",
    "PAPER_TRAIN_SAMPLES",
    "PAPER_VAL_SAMPLES",
    "PAPER_EPOCHS",
    "PAPER_SPATIAL",
    "PAPER_GPU_COUNTS",
    "paper_search_grid",
    "data_parallel_search_time",
    "experiment_parallel_search_time",
    "SpeedupRow",
    "SpeedupTable",
    "format_hms",
    "expected_max_factor",
    "sample_max_factor",
    "fit_to_table1",
    "summarize",
    "CalibrationResult",
    "calibrated_model",
    "MARENOSTRUM_CTE_PROFILE",
    "TABLE1_DATA_PARALLEL_S",
    "TABLE1_EXPERIMENT_PARALLEL_S",
    "TABLE1_DP_SPEEDUPS",
    "TABLE1_EP_SPEEDUPS",
    "GIB",
    "DatasetFootprint",
    "DeploymentPlan",
    "staging_time",
    "plan_deployment",
    "PAPER_DATASET_BYTES",
    "ServingWorkload",
    "ServingCapacityPlan",
    "plan_serving_capacity",
    "TrialBreakdown",
    "epoch_breakdown",
    "simulate_trial_timeline",
    "BenchRecord",
    "CompareReport",
    "MetricDelta",
    "append_trajectory",
    "bench_output_path",
    "compare_records",
    "host_metadata",
    "hosts_comparable",
    "is_smoke_env",
    "load_bench_record",
    "load_trajectory",
    "metric_directions",
    "validate_record",
]
