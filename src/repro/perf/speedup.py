"""Search-level elapsed-time and speed-up computation.

Combines the step cost model with the scheduling layer to price an
entire hyper-parameter search under both distribution methods, at any
GPU count -- the quantities Table I and Fig 4 report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..raysim.scheduler import fifo_schedule, lpt_schedule
from .costs import StepCostModel, TrialConfig

__all__ = [
    "paper_search_grid",
    "data_parallel_search_time",
    "experiment_parallel_search_time",
    "SpeedupRow",
    "SpeedupTable",
    "format_hms",
    "PAPER_GPU_COUNTS",
]

PAPER_GPU_COUNTS = (1, 2, 4, 8, 12, 16, 32)


def paper_search_grid() -> list[TrialConfig]:
    """The benchmark search space (documented assumption, DESIGN.md).

    The paper says only that the space is the cross-product of the
    configured options (Section III-B2).  We use 5 learning rates x
    2 loss variants (soft Dice vs quadratic soft Dice, both of which the
    paper trains) x 2 model widths (base filters 8 and 11) = 20 trials.
    This grid was selected during calibration: 20 trials whose durations
    split ~1.7 h / ~2.9 h reproduce the ~44 h single-GPU total AND the
    experiment-parallel makespan curve of Table I to a few percent
    (see EXPERIMENTS.md for the per-cell residuals of the candidate
    grids considered).
    """
    lrs = (1e-3, 5e-4, 1e-4, 5e-5, 1e-5)
    losses = ("dice", "quadratic_dice")
    widths = (8, 11)
    return [
        TrialConfig(learning_rate=lr, loss=loss, base_filters=w)
        for lr in lrs
        for loss in losses
        for w in widths
    ]


def _trial_jitters(model: StepCostModel, num_trials: int,
                   seed: int | None) -> np.ndarray:
    """Per-trial throughput jitter factors (1.0 when seed is None)."""
    if seed is None or model.params.trial_jitter_sigma == 0.0:
        return np.ones(num_trials)
    rng = np.random.default_rng(seed)
    sigma = model.params.trial_jitter_sigma
    draws = rng.lognormal(mean=0.0, sigma=sigma, size=num_trials)
    return draws / np.exp(0.5 * sigma**2)  # unit mean


def data_parallel_search_time(
    model: StepCostModel,
    trials: list[TrialConfig],
    num_gpus: int,
    seed: int | None = None,
) -> float:
    """Elapsed seconds of the data-parallel method: the trials run one
    after another, each using all ``num_gpus`` GPUs."""
    jitters = _trial_jitters(model, len(trials), seed)
    return float(
        sum(
            model.trial_time(cfg, num_gpus, jitter=j)
            for cfg, j in zip(trials, jitters)
        )
    )


def experiment_parallel_search_time(
    model: StepCostModel,
    trials: list[TrialConfig],
    num_gpus: int,
    seed: int | None = None,
    policy: str = "fifo",
) -> float:
    """Elapsed seconds of the experiment-parallel method: each trial on
    one GPU, placed by Ray Tune's greedy scheduler; the search ends when
    the last trial does (makespan)."""
    jitters = _trial_jitters(model, len(trials), seed)
    durations = [
        model.trial_time(cfg, 1, jitter=j) for cfg, j in zip(trials, jitters)
    ]
    schedule = {"fifo": fifo_schedule, "lpt": lpt_schedule}[policy]
    result = schedule(
        durations, num_gpus,
        per_trial_overhead=model.params.tune_trial_overhead_s,
    )
    # Ray cluster spin-up across the nodes hosting the workers.
    nodes = model.cluster.nodes_for(num_gpus)
    cluster_startup = (
        model.params.startup_per_node_s * nodes if num_gpus > 1 else 0.0
    )
    return float(result.makespan + cluster_startup)


def format_hms(seconds: float) -> str:
    """``44:18:02``-style formatting used by Table I."""
    if seconds < 0:
        raise ValueError("seconds must be >= 0")
    total = int(round(seconds))
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}"


@dataclass(frozen=True)
class SpeedupRow:
    """One Table I row."""

    num_gpus: int
    dp_seconds: float
    ep_seconds: float
    dp_speedup: float
    ep_speedup: float

    def formatted(self) -> tuple:
        return (
            self.num_gpus,
            format_hms(self.dp_seconds),
            f"{self.dp_speedup:.2f}",
            format_hms(self.ep_seconds),
            f"{self.ep_speedup:.2f}",
        )


class SpeedupTable:
    """Builds and formats the full Table I reproduction."""

    def __init__(
        self,
        model: StepCostModel,
        trials: list[TrialConfig] | None = None,
        gpu_counts: tuple[int, ...] = PAPER_GPU_COUNTS,
        seed: int | None = None,
    ):
        self.model = model
        self.trials = trials if trials is not None else paper_search_grid()
        self.gpu_counts = gpu_counts
        self.seed = seed

    def compute(self) -> list[SpeedupRow]:
        dp1 = data_parallel_search_time(self.model, self.trials, 1, self.seed)
        ep1 = experiment_parallel_search_time(
            self.model, self.trials, 1, self.seed
        )
        rows = []
        for n in self.gpu_counts:
            dp = data_parallel_search_time(self.model, self.trials, n, self.seed)
            ep = experiment_parallel_search_time(
                self.model, self.trials, n, self.seed
            )
            rows.append(
                SpeedupRow(
                    num_gpus=n,
                    dp_seconds=dp,
                    ep_seconds=ep,
                    dp_speedup=dp1 / dp,
                    ep_speedup=ep1 / ep,
                )
            )
        return rows

    def render(self, rows: list[SpeedupRow] | None = None) -> str:
        rows = rows if rows is not None else self.compute()
        lines = [
            "        |  Data Parallel Method   | Experiment Parallel Method",
            "# GPUs  | Elapsed time | Speedup  | Elapsed time | Speedup",
            "-" * 64,
        ]
        for r in rows:
            n, dp_t, dp_s, ep_t, ep_s = r.formatted()
            lines.append(
                f"{n:>6}  | {dp_t:>12} | {dp_s:>7}  | {ep_t:>12} | {ep_s:>7}"
            )
        return "\n".join(lines)
