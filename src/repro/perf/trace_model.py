"""Detailed (per-epoch, per-category) simulation of one training trial.

Table I only needs trial totals; understanding *why* data parallelism
scales sub-linearly needs the breakdown this module provides: for every
epoch, how much wall-clock went to useful compute, to waiting at the
synchronisation barrier for stragglers, to the all-reduce, to the input
pipeline and to framework overhead.  The per-epoch straggler factor is
*sampled* (not its expectation), so repeated runs exhibit the epoch-time
variance behind Fig 4a's error bars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.collectives import allreduce_time
from ..cluster.trace import Timeline
from .costs import StepCostModel, TrialConfig
from .straggler import sample_max_factor

__all__ = ["epoch_breakdown", "simulate_trial_timeline", "TrialBreakdown"]


@dataclass(frozen=True)
class TrialBreakdown:
    """Seconds per cost category for one full trial."""

    compute: float
    straggler_wait: float
    allreduce: float
    input: float
    framework: float
    validation: float
    fixed: float

    def total(self) -> float:
        return (self.compute + self.straggler_wait + self.allreduce
                + self.input + self.framework + self.validation + self.fixed)

    def fractions(self) -> dict[str, float]:
        t = self.total()
        return {
            "compute": self.compute / t,
            "straggler_wait": self.straggler_wait / t,
            "allreduce": self.allreduce / t,
            "input": self.input / t,
            "framework": self.framework / t,
            "validation": self.validation / t,
            "fixed": self.fixed / t,
        }


def epoch_breakdown(
    model: StepCostModel, config: TrialConfig, num_gpus: int
) -> TrialBreakdown:
    """Analytic per-trial cost decomposition (expected values)."""
    steps = model.steps_per_epoch(config, num_gpus)
    compute = model.step_compute_time(config)
    sync = compute * (model.sync_factor(num_gpus) - 1.0)
    m = model.cluster.node.num_gpus
    comm = allreduce_time(
        model.gradient_bytes(config), num_gpus, m,
        model.cluster.node.intra_link, model.cluster.inter_link,
    )
    e = config.epochs
    return TrialBreakdown(
        compute=e * steps * compute,
        straggler_wait=e * steps * sync,
        allreduce=e * steps * comm,
        input=e * steps * model.input_time(config),
        framework=e * steps * model.framework_overhead(num_gpus),
        validation=e * model.validation_time(config, num_gpus),
        fixed=e * model.params.epoch_fixed_s + model.startup_time(num_gpus),
    )


def simulate_trial_timeline(
    model: StepCostModel,
    config: TrialConfig,
    num_gpus: int,
    seed: int = 0,
    epochs: int | None = None,
) -> Timeline:
    """Per-epoch trace with sampled straggler waits.

    One lane per cost category (epoch spans laid back-to-back), so
    ``timeline.by_category()`` gives the realised breakdown and
    ``timeline.makespan()`` the realised trial duration.
    """
    rng = np.random.default_rng(seed)
    e_total = epochs if epochs is not None else config.epochs
    if e_total < 1:
        raise ValueError("epochs must be >= 1")

    steps = model.steps_per_epoch(config, num_gpus)
    compute = model.step_compute_time(config)
    m = model.cluster.node.num_gpus
    comm = allreduce_time(
        model.gradient_bytes(config), num_gpus, m,
        model.cluster.node.intra_link, model.cluster.inter_link,
    )
    inp = model.input_time(config)
    fw = model.framework_overhead(num_gpus)
    val = model.validation_time(config, num_gpus)
    fixed = model.params.epoch_fixed_s

    timeline = Timeline()
    now = model.startup_time(num_gpus)
    if now > 0:
        timeline.record("startup", 0.0, now, "trial", category="fixed")
    sigma = model.params.straggler_sigma
    for epoch in range(e_total):
        factor = sample_max_factor(num_gpus, sigma, rng, num_steps=steps)
        seg = [
            ("compute", steps * compute),
            ("straggler_wait", steps * compute * max(0.0, factor - 1.0)),
            ("allreduce", steps * comm),
            ("input", steps * inp),
            ("framework", steps * fw),
            ("validation", val),
            ("fixed", fixed),
        ]
        for category, dur in seg:
            if dur <= 0:
                continue
            timeline.record(
                f"epoch{epoch:03d}.{category}", now, now + dur, "trial",
                category=category, epoch=epoch,
            )
            now += dur
    return timeline
