"""Straggler (max-of-n) statistics for synchronous training.

A synchronous data-parallel step ends when the *slowest* replica
finishes, so with per-replica compute times ``t * L_i`` (``L_i``
i.i.d. lognormal(0, sigma)), the expected step time is
``t * E[max_i L_i]``.  The inflation factor ``E[max of n] / E[single]``
grows with ``n`` -- one of the three first-principles reasons the
paper's data-parallel speed-up is sub-linear (DESIGN.md Section 5).

``E[exp(sigma * Z_(n))]`` (``Z_(n)`` the max of n standard normals) is
evaluated by numerical quadrature of the order-statistic density
``n * phi(z) * Phi(z)**(n-1)``.
"""

from __future__ import annotations

import functools
import math

import numpy as np
from scipy.stats import norm

__all__ = ["expected_max_factor", "sample_max_factor"]


@functools.lru_cache(maxsize=4096)
def expected_max_factor(n: int, sigma: float) -> float:
    """E[max of n lognormal(0, sigma)] / E[lognormal(0, sigma)].

    Equals 1 for n == 1 or sigma == 0; strictly increasing in both
    arguments otherwise.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if n == 1 or sigma == 0.0:
        return 1.0
    z = np.linspace(-9.0, 9.0, 4001)
    pdf_max = n * norm.pdf(z) * norm.cdf(z) ** (n - 1)
    e_max = np.trapezoid(np.exp(sigma * z) * pdf_max, z)
    e_single = math.exp(0.5 * sigma**2)  # lognormal mean
    return float(e_max / e_single)


def sample_max_factor(
    n: int, sigma: float, rng: np.random.Generator, num_steps: int = 1
) -> float:
    """Monte-Carlo realisation of the mean max-of-n factor over
    ``num_steps`` steps (used when a run wants stochastic, not expected,
    behaviour)."""
    if n == 1 or sigma == 0.0:
        return 1.0
    draws = rng.lognormal(mean=0.0, sigma=sigma, size=(num_steps, n))
    return float(draws.max(axis=1).mean() / math.exp(0.5 * sigma**2))
