"""Benchmark-regression tracking over the committed ``BENCH_*.json``.

The benchmark suite (``benchmarks/test_*.py``) writes one
machine-readable summary per benchmark -- timings, derived speedups and
the host/BLAS metadata that make numbers comparable across machines.
Committed summaries form the performance **trajectory** of the repo:
each is an append-only baseline a fresh run can be diffed against, and
``distmis bench compare`` is that diff as a CI gate.

Three rules keep the gate honest:

* **Smoke quarantine** -- ``DISTMIS_BENCH_SMOKE=1`` runs write
  ``BENCH_*_smoke.json`` (see :func:`bench_output_path`), so a smoke
  run can never overwrite a trajectory file, and any record carrying
  ``"smoke": true`` is rejected from comparisons outright: smoke-scale
  numbers are interpreter-bound and say nothing about the kernels.
* **Host awareness** -- records embed cpu count, machine and BLAS
  vendor.  When candidate and baseline disagree on any of these the
  comparison is *advisory* (reported, never failed) unless
  ``strict_host`` forces it: a laptop cannot regress a cluster's
  baseline.
* **Noise-aware thresholds** -- a metric only regresses when it moves
  past ``max(rel_threshold, NOISE_SIGMAS * cv)`` where ``cv`` is the
  coefficient of variation over the trajectory history for that metric
  (when >= MIN_HISTORY points exist).  A metric with a noisy history
  earns a wider band instead of flapping.

Metric direction is inferred from naming (``*_seconds`` and
``*overhead*`` are lower-is-better, ``*speedup*`` and ``*throughput*``
higher-is-better); everything else is informational only.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "BenchRecord", "MetricDelta", "CompareReport", "SCHEMA_REQUIRED_KEYS",
    "REQUIRED_METRICS",
    "bench_output_path", "is_smoke_env", "host_metadata",
    "load_bench_record", "validate_record", "metric_directions",
    "hosts_comparable", "compare_records", "append_trajectory",
    "load_trajectory", "TRAJECTORY_JSONL",
]

# Keys every benchmark summary must carry to join the trajectory.
SCHEMA_REQUIRED_KEYS = ("benchmark", "smoke", "host")

# Per-benchmark required metrics (flattened dot-paths): a record
# claiming one of these benchmark names must carry them, so a serving
# run that lost its percentiles can never silently join the trajectory.
REQUIRED_METRICS = {
    # the per-priority block must carry every standard level (the bench
    # zero-fills unused ones) and the shed count, so a serving record
    # that lost its overload accounting can never join the trajectory
    "serving": ("latency_seconds.p50", "latency_seconds.p95",
                "latency_seconds.p99", "throughput_rps",
                "priorities.high.latency_seconds.p99",
                "priorities.normal.latency_seconds.p99",
                "priorities.low.latency_seconds.p99",
                "requests.shed"),
    # every backend x dtype row must be present, so a kernel record that
    # silently dropped a backend can never join the trajectory
    "kernel_backends": tuple(
        f"backends.{b}.{d}.step_seconds"
        for b in ("reference", "gemm", "fused")
        for d in ("float64", "float32")
    ) + ("speedup", "fused_speedup_vs_gemm"),
}

# A candidate regresses when it moves past the larger of these bands.
DEFAULT_REL_THRESHOLD = 0.15
NOISE_SIGMAS = 3.0
MIN_HISTORY = 3

TRAJECTORY_JSONL = "BENCH_trajectory.jsonl"

_LOWER_SUFFIXES = ("_seconds", "_s")
_LOWER_TOKENS = ("overhead", "latency", "rss")
_HIGHER_TOKENS = ("speedup", "throughput", "efficiency")


def is_smoke_env(environ=None) -> bool:
    """True when ``DISTMIS_BENCH_SMOKE`` asks for the shrunk workload."""
    environ = os.environ if environ is None else environ
    return environ.get("DISTMIS_BENCH_SMOKE", "") not in ("", "0")


def bench_output_path(anchor, name: str, smoke: bool | None = None) -> Path:
    """Where a benchmark writes its summary.

    ``anchor`` is the benchmark module's ``__file__``; full runs land on
    the trajectory file ``BENCH_<name>.json`` while smoke runs are
    quarantined onto ``BENCH_<name>_smoke.json`` so they can never
    clobber a committed trajectory point.
    """
    smoke = is_smoke_env() if smoke is None else smoke
    suffix = "_smoke" if smoke else ""
    return Path(anchor).with_name(f"BENCH_{name}{suffix}.json")


def host_metadata() -> dict:
    """The host/BLAS identity block every benchmark summary embeds --
    the metadata that makes timings comparable across machines."""
    import platform

    meta: dict = {
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "processor": platform.processor() or platform.machine(),
        "blas_threads": {
            var: os.environ.get(var)
            for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                        "MKL_NUM_THREADS")
        },
    }
    try:
        import numpy as np

        meta["numpy"] = np.__version__
        blas = np.show_config(mode="dicts")["Build Dependencies"]["blas"]
        meta["blas"] = {k: blas.get(k) for k in ("name", "version")}
    except Exception:  # pragma: no cover - numpy absent or layout drift
        meta.setdefault("numpy", None)
        meta["blas"] = None
    return meta


# -- records -----------------------------------------------------------------
@dataclass
class BenchRecord:
    """One parsed benchmark summary (a trajectory point or candidate)."""

    benchmark: str
    smoke: bool
    host: dict
    metrics: dict            # flat {name: float} of comparable numbers
    raw: dict = field(default_factory=dict, repr=False)
    path: str | None = None

    @property
    def host_key(self) -> tuple:
        """The identity under which numbers are comparable."""
        blas = self.host.get("blas") or {}
        return (self.host.get("machine"), self.host.get("cpu_count"),
                blas.get("name") if isinstance(blas, dict) else blas)


def _flatten_numeric(obj, prefix: str = "", out: dict | None = None) -> dict:
    if out is None:
        out = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            key = f"{prefix}.{k}" if prefix else str(k)
            if isinstance(v, bool):
                continue
            if isinstance(v, (int, float)):
                out[key] = float(v)
            elif isinstance(v, dict):
                _flatten_numeric(v, key, out)
    return out


def validate_record(obj, path=None) -> list[str]:
    """Schema problems of one summary dict; empty list means valid."""
    problems: list[str] = []
    where = f"{path}: " if path else ""
    if not isinstance(obj, dict):
        return [f"{where}not a JSON object"]
    for key in SCHEMA_REQUIRED_KEYS:
        if key not in obj:
            problems.append(f"{where}missing required key {key!r}")
    if "smoke" in obj and not isinstance(obj["smoke"], bool):
        problems.append(f"{where}'smoke' must be a boolean")
    if "host" in obj and not isinstance(obj["host"], dict):
        problems.append(f"{where}'host' must be an object")
    if path is not None:
        name = Path(path).name
        if obj.get("smoke") and not name.endswith("_smoke.json"):
            problems.append(
                f"{where}smoke record on a trajectory filename (smoke runs "
                "must write *_smoke.json)")
        if not obj.get("smoke", False) and name.endswith("_smoke.json"):
            problems.append(f"{where}full-size record on a *_smoke.json name")
    flat = _flatten_numeric(obj if isinstance(obj, dict) else {})
    if not flat:
        problems.append(f"{where}no numeric metrics to track")
    for needed in REQUIRED_METRICS.get(str(obj.get("benchmark", "")), ()):
        if needed not in flat:
            problems.append(
                f"{where}benchmark {obj.get('benchmark')!r} requires "
                f"metric {needed!r}")
    if obj.get("benchmark") == "serving":
        problems += _validate_latency_histogram(obj, where)
    return problems


def _validate_latency_histogram(obj: dict, where: str) -> list[str]:
    """Structural check for the serving record's SLO histogram: a
    non-empty list of ``[edge_seconds, cumulative_count]`` pairs with
    strictly increasing edges and non-decreasing counts.  Stored as a
    list precisely so :func:`_flatten_numeric` (dicts only) never turns
    raw bucket counts into gated trajectory metrics."""
    hist = obj.get("latency_histogram")
    if not isinstance(hist, dict) or "buckets" not in hist:
        return [f"{where}serving record requires "
                "'latency_histogram.buckets'"]
    buckets = hist["buckets"]
    if not isinstance(buckets, list) or not buckets:
        return [f"{where}'latency_histogram.buckets' must be a non-empty "
                "list of [edge_seconds, cumulative_count] pairs"]
    prev_edge, prev_count = -math.inf, 0
    for pair in buckets:
        if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                or not all(isinstance(v, (int, float))
                           and not isinstance(v, bool) for v in pair)):
            return [f"{where}malformed latency_histogram bucket {pair!r}"]
        edge, count = float(pair[0]), pair[1]
        if edge <= prev_edge:
            return [f"{where}latency_histogram bucket edges must be "
                    "strictly increasing"]
        if count < prev_count:
            return [f"{where}latency_histogram cumulative counts must be "
                    "non-decreasing"]
        prev_edge, prev_count = edge, count
    return []


def load_bench_record(path) -> BenchRecord:
    """Parse and validate one ``BENCH_*.json``; raises ``ValueError`` on
    schema violations."""
    path = Path(path)
    obj = json.loads(path.read_text())
    problems = validate_record(obj, path=path)
    if problems:
        raise ValueError("; ".join(problems))
    metrics = {k: v for k, v in _flatten_numeric(obj).items()
               if not k.startswith("host.")}
    return BenchRecord(benchmark=str(obj["benchmark"]),
                       smoke=bool(obj["smoke"]), host=dict(obj["host"]),
                       metrics=metrics, raw=obj, path=str(path))


def metric_directions(metrics: dict) -> dict[str, str]:
    """``{name: "lower"|"higher"}`` for the metrics worth gating on.

    Any path component counts (``kernel_seconds.gemm.conv3d_forward``
    is lower-is-better via its ``kernel_seconds`` ancestor), with the
    leaf taking precedence when components disagree.
    """
    out: dict[str, str] = {}
    for name in metrics:
        for part in reversed(name.lower().split(".")):
            if any(tok in part for tok in _HIGHER_TOKENS):
                out[name] = "higher"
                break
            if part.endswith(_LOWER_SUFFIXES) or \
                    any(tok in part for tok in _LOWER_TOKENS):
                out[name] = "lower"
                break
    return out


def hosts_comparable(a: BenchRecord, b: BenchRecord) -> list[str]:
    """Why two records' hosts are *not* comparable (empty = same class)."""
    reasons = []
    for (ka, kb, label) in zip(a.host_key, b.host_key,
                               ("machine", "cpu_count", "blas")):
        if ka != kb:
            reasons.append(f"{label}: {ka!r} vs {kb!r}")
    return reasons


# -- comparison --------------------------------------------------------------
@dataclass
class MetricDelta:
    """One metric's baseline-vs-candidate movement."""

    name: str
    direction: str           # "lower" | "higher"
    baseline: float
    candidate: float
    rel_change: float        # signed, positive = got worse
    threshold: float
    regressed: bool

    def describe(self) -> str:
        arrow = "worse" if self.rel_change > 0 else "better"
        flag = "REGRESSED" if self.regressed else "ok"
        return (f"{self.name}: {self.baseline:g} -> {self.candidate:g} "
                f"({self.rel_change * 100:+.1f}% {arrow}, "
                f"band {self.threshold * 100:.0f}%) [{flag}]")


@dataclass
class CompareReport:
    """Outcome of one candidate-vs-baseline comparison."""

    benchmark: str
    deltas: list[MetricDelta]
    host_mismatch: list[str]
    advisory: bool           # host mismatch downgraded failures to warnings
    quarantined: str | None = None   # set when a smoke record was rejected

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return self.quarantined is None and (
            self.advisory or not self.regressions)

    def describe(self) -> str:
        lines = [f"bench compare: {self.benchmark}"]
        if self.quarantined:
            lines.append(f"  QUARANTINED: {self.quarantined}")
            return "\n".join(lines)
        if self.host_mismatch:
            mode = "advisory (not gating)" if self.advisory else "gating"
            lines.append("  host mismatch [" + "; ".join(self.host_mismatch)
                         + f"] -- {mode}")
        for d in self.deltas:
            lines.append("  " + d.describe())
        lines.append(f"  => {'OK' if self.ok else 'REGRESSION'} "
                     f"({len(self.regressions)} regressed metric(s))")
        return "\n".join(lines)


def _noise_threshold(history: list[float]) -> float:
    if len(history) < MIN_HISTORY:
        return 0.0
    mean = sum(history) / len(history)
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in history) / (len(history) - 1)
    return NOISE_SIGMAS * math.sqrt(var) / abs(mean)


def compare_records(baseline: BenchRecord, candidate: BenchRecord,
                    rel_threshold: float = DEFAULT_REL_THRESHOLD,
                    history: dict[str, list[float]] | None = None,
                    strict_host: bool = False) -> CompareReport:
    """Diff a candidate run against a trajectory baseline.

    ``history`` maps metric name to its past trajectory values (same
    host class) and widens the per-metric band to the measured noise.
    """
    if candidate.smoke:
        return CompareReport(
            benchmark=candidate.benchmark, deltas=[], host_mismatch=[],
            advisory=False,
            quarantined="candidate is a smoke record (interpreter-bound "
                        "numbers never gate the trajectory)")
    if baseline.smoke:
        return CompareReport(
            benchmark=candidate.benchmark, deltas=[], host_mismatch=[],
            advisory=False,
            quarantined="baseline is a smoke record -- regenerate the "
                        "trajectory file with a full-size run")
    mismatch = hosts_comparable(baseline, candidate)
    advisory = bool(mismatch) and not strict_host
    directions = metric_directions(baseline.metrics)
    deltas: list[MetricDelta] = []
    for name, direction in sorted(directions.items()):
        if name not in candidate.metrics:
            continue
        base, cand = baseline.metrics[name], candidate.metrics[name]
        if base == 0:
            continue
        # positive rel_change == moved in the "worse" direction
        change = (cand - base) / abs(base)
        if direction == "higher":
            change = -change
        band = max(rel_threshold,
                   _noise_threshold((history or {}).get(name, [])))
        deltas.append(MetricDelta(
            name=name, direction=direction, baseline=base, candidate=cand,
            rel_change=change, threshold=band,
            regressed=change > band))
    return CompareReport(benchmark=candidate.benchmark, deltas=deltas,
                         host_mismatch=mismatch, advisory=advisory)


# -- trajectory history ------------------------------------------------------
def append_trajectory(record: BenchRecord, bench_dir) -> Path:
    """Append a full-size record to the benchmark directory's history
    JSONL (one line per run; smoke records are refused)."""
    if record.smoke:
        raise ValueError("smoke records are quarantined from the trajectory")
    path = Path(bench_dir) / TRAJECTORY_JSONL
    row = {"t_wall": time.time(), "benchmark": record.benchmark,
           "host_key": list(record.host_key), "metrics": record.metrics}
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def load_trajectory(bench_dir, benchmark: str,
                    host_key: tuple | None = None
                    ) -> dict[str, list[float]]:
    """Per-metric value history for one benchmark (optionally filtered
    to one host class), oldest first -- feeds the noise bands."""
    path = Path(bench_dir) / TRAJECTORY_JSONL
    history: dict[str, list[float]] = {}
    if not path.exists():
        return history
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail
            if row.get("benchmark") != benchmark:
                continue
            if host_key is not None and \
                    tuple(row.get("host_key", ())) != tuple(host_key):
                continue
            for name, value in row.get("metrics", {}).items():
                history.setdefault(name, []).append(float(value))
    return history
