"""Analytic cost model for 3D U-Net training steps at cluster scale.

Builds per-step / per-epoch / per-trial wall-clock estimates from first
principles plus a handful of calibrated constants:

* **compute** -- convolution FLOPs of the Fig 2 architecture divided by
  the V100's sustained throughput (peak x calibrated efficiency);
* **synchronisation** -- data-parallel steps end at a barrier, so the
  step takes the *max* of the replicas' jittered compute times
  (:mod:`repro.perf.straggler`);
* **communication** -- hierarchical ring all-reduce of the gradient
  buffer (:mod:`repro.cluster.collectives`) plus calibrated per-step
  framework overhead (MirroredStrategy in-node, Ray SGD across nodes);
* **input** -- host-to-device transfer of the binarised batch;
* **quantisation** -- ``ceil(samples / (batch x n))`` steps per epoch,
  which wastes up to one partial step per epoch at large ``n`` (338
  training volumes / global batch 64 = 5.28 -> 6 steps at 32 GPUs).

The same model prices the experiment-parallel method: each trial is a
1-GPU run plus the Ray Tune per-trial overhead, and the search's elapsed
time is a placement makespan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..cluster.collectives import allreduce_time
from ..cluster.resources import ClusterSpec, marenostrum_cte
from .straggler import expected_max_factor

__all__ = [
    "conv3d_flops",
    "unet3d_forward_flops",
    "unet3d_param_count",
    "TrialConfig",
    "CostModelParams",
    "StepCostModel",
    "PAPER_TRAIN_SAMPLES",
    "PAPER_VAL_SAMPLES",
    "PAPER_EPOCHS",
    "PAPER_SPATIAL",
]

# Section IV-A/B constants: 484 subjects split 70/15/15, 250 epochs,
# 240x240x152 input after the crop.
PAPER_TRAIN_SAMPLES = 338
PAPER_VAL_SAMPLES = 73
PAPER_EPOCHS = 250
PAPER_SPATIAL = (240, 240, 152)


def conv3d_flops(voxels: int, c_in: int, c_out: int, kernel: int = 3) -> float:
    """Multiply-add count x2 for one convolution over ``voxels`` outputs."""
    return 2.0 * voxels * c_in * c_out * kernel**3


def unet3d_forward_flops(
    spatial: tuple[int, int, int] = PAPER_SPATIAL,
    base_filters: int = 8,
    depth: int = 4,
    in_channels: int = 4,
    out_channels: int = 1,
    transpose_halves: bool = True,
) -> float:
    """Forward-pass FLOPs of the paper's U-Net for ONE sample.

    Mirrors the layer structure of :class:`repro.nn.unet3d.UNet3D`
    exactly (the unit tests cross-check against the real layer graph).
    """
    voxels0 = spatial[0] * spatial[1] * spatial[2]
    f = [base_filters * 2**s for s in range(depth)]
    total = 0.0
    # analysis path
    ci = in_channels
    for s in range(depth):
        v = voxels0 / (8**s)
        total += conv3d_flops(v, ci, f[s]) + conv3d_flops(v, f[s], f[s])
        ci = f[s]
    # synthesis path
    cur = f[-1]
    for s in range(depth - 2, -1, -1):
        v = voxels0 / (8**s)
        up_out = f[s] if transpose_halves else cur
        total += conv3d_flops(v, cur, up_out, kernel=2) / 8  # convT: k^3/stride^3 taps/output
        cat = up_out + f[s]
        total += conv3d_flops(v, cat, f[s]) + conv3d_flops(v, f[s], f[s])
        cur = f[s]
    total += conv3d_flops(voxels0, cur, out_channels, kernel=1)
    return total


def unet3d_param_count(base_filters: int = 8, depth: int = 4,
                       in_channels: int = 4, out_channels: int = 1,
                       transpose_halves: bool = True) -> int:
    """Trainable parameter count (weights + biases + BN gamma/beta),
    for gradient-buffer sizing."""
    f = [base_filters * 2**s for s in range(depth)]
    total = 0
    ci = in_channels
    for s in range(depth):
        total += ci * f[s] * 27 + f[s] + 2 * f[s]
        total += f[s] * f[s] * 27 + f[s] + 2 * f[s]
        ci = f[s]
    cur = f[-1]
    for s in range(depth - 2, -1, -1):
        up_out = f[s] if transpose_halves else cur
        total += cur * up_out * 8 + up_out
        cat = up_out + f[s]
        total += cat * f[s] * 27 + f[s] + 2 * f[s]
        total += f[s] * f[s] * 27 + f[s] + 2 * f[s]
        cur = f[s]
    total += cur * out_channels + out_channels
    return total


@dataclass(frozen=True)
class TrialConfig:
    """One hyper-parameter combination of the benchmark search.

    The paper does not enumerate its grid; DESIGN.md documents the
    assumption used here: 5 learning rates x 2 losses x 2 batch sizes
    = 20 trials at the fixed Fig 2 architecture.
    """

    learning_rate: float = 1e-4
    loss: str = "dice"              # "dice" | "quadratic_dice"
    batch_per_replica: int = 2      # V100 16 GB fits at most 2 full volumes
    base_filters: int = 8
    epochs: int = PAPER_EPOCHS

    def __post_init__(self):
        if self.batch_per_replica not in (1, 2):
            raise ValueError(
                "batch_per_replica must be 1 or 2 (16 GB V100, Section V-C)"
            )
        if self.loss not in ("dice", "quadratic_dice"):
            raise ValueError(f"unknown loss {self.loss!r}")

    def compute_scale(self) -> float:
        """Relative per-sample cost vs the default configuration."""
        scale = unet3d_forward_flops(base_filters=self.base_filters) / \
            unet3d_forward_flops(base_filters=8)
        if self.loss == "quadratic_dice":
            scale *= 1.02  # extra elementwise squares in the loss
        return scale


@dataclass(frozen=True)
class CostModelParams:
    """Calibrated constants of the cost model.

    ``gpu_efficiency`` etc. are fitted once against Table I by
    :mod:`repro.perf.calibration`; every other quantity is physical.
    """

    gpu_efficiency: float = 0.55          # sustained fraction of peak fp32
    straggler_sigma: float = 0.10         # lognormal per-replica jitter
    mirrored_overhead_s: float = 0.05     # per-step, 1 < n <= M (in-node)
    internode_overhead_s: float = 0.02    # per-step x num_nodes (Ray SGD)
    input_bytes_per_sample: float = 4 * 240 * 240 * 152 * 4.0
    epoch_fixed_s: float = 5.0            # checkpoint/logging per epoch
    startup_base_s: float = 60.0          # process + TF graph build
    startup_per_node_s: float = 20.0      # Ray cluster join per node
    tune_trial_overhead_s: float = 90.0   # Tune scheduling + env setup
    trial_jitter_sigma: float = 0.05      # run-to-run throughput spread
    backward_factor: float = 2.0          # bwd = 2 x fwd FLOPs

    def validate(self) -> None:
        if not 0.0 < self.gpu_efficiency <= 1.0:
            raise ValueError("gpu_efficiency must be in (0, 1]")
        for name in ("straggler_sigma", "mirrored_overhead_s",
                     "internode_overhead_s", "epoch_fixed_s",
                     "startup_base_s", "startup_per_node_s",
                     "tune_trial_overhead_s", "trial_jitter_sigma"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def with_overrides(self, **kw) -> "CostModelParams":
        return replace(self, **kw)


class StepCostModel:
    """Prices steps, epochs and trials on a given cluster."""

    def __init__(
        self,
        params: CostModelParams | None = None,
        cluster: ClusterSpec | None = None,
        train_samples: int = PAPER_TRAIN_SAMPLES,
        val_samples: int = PAPER_VAL_SAMPLES,
        spatial: tuple[int, int, int] = PAPER_SPATIAL,
    ):
        self.params = params or CostModelParams()
        self.params.validate()
        self.cluster = cluster or marenostrum_cte(8)
        self.train_samples = train_samples
        self.val_samples = val_samples
        self.spatial = spatial
        self._fwd_flops_base = unet3d_forward_flops(spatial)

    # -- building blocks ---------------------------------------------------
    def forward_time(self, config: TrialConfig) -> float:
        """Forward seconds for one per-replica batch."""
        p = self.params
        peak = self.cluster.node.gpu.fp32_tflops * 1e12
        flops = (
            self._fwd_flops_base
            * config.compute_scale()
            * config.batch_per_replica
        )
        return flops / (peak * p.gpu_efficiency)

    def step_compute_time(self, config: TrialConfig) -> float:
        """Forward + backward seconds for one per-replica batch."""
        return self.forward_time(config) * (1.0 + self.params.backward_factor)

    def input_time(self, config: TrialConfig) -> float:
        """Host-to-device copy of the binarised batch (prefetch overlaps
        the record read itself, so only the PCIe hop is charged)."""
        nbytes = self.params.input_bytes_per_sample * config.batch_per_replica
        link = self.cluster.node.host_link
        return link.latency_s + nbytes / link.bandwidth_bytes_per_s

    def gradient_bytes(self, config: TrialConfig) -> int:
        return unet3d_param_count(base_filters=config.base_filters) * 4

    def framework_overhead(self, num_gpus: int) -> float:
        """Per-step cost of the distribution framework (Section III-B2
        cases: none / MirroredStrategy / Ray SGD across nodes)."""
        p = self.params
        m = self.cluster.node.num_gpus
        if num_gpus <= 1:
            return 0.0
        if num_gpus <= m:
            return p.mirrored_overhead_s
        nodes = math.ceil(num_gpus / m)
        return p.mirrored_overhead_s + p.internode_overhead_s * nodes

    def sync_factor(self, num_gpus: int) -> float:
        """Straggler inflation: barrier waits for the slowest replica."""
        return expected_max_factor(num_gpus, self.params.straggler_sigma)

    def step_time(self, config: TrialConfig, num_gpus: int) -> float:
        """One synchronous data-parallel training step on ``num_gpus``."""
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        m = self.cluster.node.num_gpus
        comm = allreduce_time(
            self.gradient_bytes(config),
            num_gpus,
            m,
            self.cluster.node.intra_link,
            self.cluster.inter_link,
        )
        return (
            self.step_compute_time(config) * self.sync_factor(num_gpus)
            + comm
            + self.framework_overhead(num_gpus)
            + self.input_time(config)
        )

    # -- aggregates -------------------------------------------------------
    def steps_per_epoch(self, config: TrialConfig, num_gpus: int) -> int:
        global_batch = config.batch_per_replica * num_gpus
        return math.ceil(self.train_samples / global_batch)

    def validation_time(self, config: TrialConfig, num_gpus: int) -> float:
        """Per-epoch validation: forward-only pass over the val split."""
        steps = math.ceil(
            self.val_samples / (config.batch_per_replica * num_gpus)
        )
        per = self.forward_time(config) + self.input_time(config)
        if num_gpus > 1:
            per = per * self.sync_factor(num_gpus) + self.framework_overhead(num_gpus)
        return steps * per

    def epoch_time(self, config: TrialConfig, num_gpus: int) -> float:
        return (
            self.steps_per_epoch(config, num_gpus) * self.step_time(config, num_gpus)
            + self.validation_time(config, num_gpus)
            + self.params.epoch_fixed_s
        )

    def startup_time(self, num_gpus: int) -> float:
        nodes = self.cluster.nodes_for(num_gpus)
        extra = self.params.startup_per_node_s * nodes if num_gpus > 1 else 0.0
        return self.params.startup_base_s + extra

    def trial_time(self, config: TrialConfig, num_gpus: int,
                   jitter: float = 1.0) -> float:
        """Full data-parallel training run of one configuration."""
        if jitter <= 0:
            raise ValueError("jitter must be positive")
        return (
            config.epochs * self.epoch_time(config, num_gpus) * jitter
            + self.startup_time(num_gpus)
        )
