"""Data-deployment cost model (the Fig 1 'data deployment' stage).

Before any training starts, the binarised dataset must reach the nodes
that will read it.  The paper lists "data transformation, data
deployment and process placement" as the pipeline stages that must be
"properly engineered" (Section I); this module prices the deployment
options so their impact on the Table I elapsed times can be bounded:

* ``shared_fs``  -- data stays on the parallel filesystem (GPFS);
  deployment is free but every epoch pays the (slower, contended)
  shared-FS read, modelled as a bandwidth haircut;
* ``stage_to_nodes`` -- copy the dataset once to node-local storage
  over the fabric, sequentially or with a broadcast tree.

It also hosts the *serving* capacity model (ROADMAP item 1): given a
replica's measured per-sample service time and per-invocation dispatch
overhead, size a micro-batched replica pool for a target request rate
(:func:`plan_serving_capacity`).

Unit convention: storage sizes and read bandwidths in this module are
**binary** (GiB, GiB/s, via :data:`GIB`); network links (``LinkSpec``)
keep their documented decimal GB/s.  An earlier revision priced read
bandwidth in decimal GB/s against GiB footprints, skewing the
staged-vs-shared comparison by ~7%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.network import LinkSpec

__all__ = ["GIB", "DatasetFootprint", "staging_time", "DeploymentPlan",
           "plan_deployment", "PAPER_DATASET_BYTES",
           "ServingWorkload", "ServingCapacityPlan", "plan_serving_capacity",
           "ScatterGatherWorkload"]

#: One binary gibibyte -- the storage/read-bandwidth unit of this module.
GIB = 2**30

# 484 subjects x (4 x 240 x 240 x 152 image + 240 x 240 x 152 mask) float32.
PAPER_DATASET_BYTES = 484 * (4 + 1) * 240 * 240 * 152 * 4


@dataclass(frozen=True)
class DatasetFootprint:
    """Size of the binarised training set."""

    total_bytes: int = PAPER_DATASET_BYTES

    def __post_init__(self):
        if self.total_bytes <= 0:
            raise ValueError("total_bytes must be positive")

    @property
    def gib(self) -> float:
        return self.total_bytes / GIB


def staging_time(
    footprint: DatasetFootprint,
    num_nodes: int,
    link: LinkSpec,
    tree: bool = True,
) -> float:
    """Seconds to place a full copy on every node.

    ``tree=True`` uses a binomial broadcast (each node that holds the
    data forwards it): ceil(log2(nodes)) full-dataset transfers on the
    critical path.  ``tree=False`` pushes sequentially from one source.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if num_nodes == 1:
        return 0.0
    per_copy = link.latency_s + footprint.total_bytes / link.bandwidth_bytes_per_s
    hops = math.ceil(math.log2(num_nodes)) if tree else (num_nodes - 1)
    return hops * per_copy


@dataclass(frozen=True)
class DeploymentPlan:
    strategy: str
    upfront_seconds: float
    per_epoch_read_seconds: float

    def total_seconds(self, epochs: int) -> float:
        if epochs < 0:
            raise ValueError("epochs must be >= 0")
        return self.upfront_seconds + epochs * self.per_epoch_read_seconds


def plan_deployment(
    footprint: DatasetFootprint,
    num_nodes: int,
    fabric: LinkSpec,
    local_read_gibs: float = 2.0,
    shared_read_gibs: float = 0.8,
    strategy: str = "stage_to_nodes",
) -> DeploymentPlan:
    """Price a deployment strategy for one training run.

    Read bandwidths are binary GiB/s, matching ``DatasetFootprint.gib``
    (so ``footprint.gib / local_read_gibs`` round-trips exactly).
    Per-epoch read time assumes the whole training set is read once per
    epoch (prefetching overlaps it with compute; what matters for the
    comparison is the *relative* read cost).
    """
    if local_read_gibs <= 0 or shared_read_gibs <= 0:
        raise ValueError("read bandwidths must be positive")
    if strategy == "shared_fs":
        return DeploymentPlan(
            strategy=strategy,
            upfront_seconds=0.0,
            per_epoch_read_seconds=footprint.total_bytes / (shared_read_gibs * GIB),
        )
    if strategy == "stage_to_nodes":
        return DeploymentPlan(
            strategy=strategy,
            upfront_seconds=staging_time(footprint, num_nodes, fabric),
            per_epoch_read_seconds=footprint.total_bytes / (local_read_gibs * GIB),
        )
    raise ValueError(f"unknown strategy {strategy!r}")


# ---------------------------------------------------------------------------
# Serving capacity model (repro.serve sizing)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServingWorkload:
    """Measured per-replica cost of serving one micro-batch.

    A replica invocation of ``k`` requests costs
    ``dispatch_overhead_s + k * service_s``: the per-sample forward time
    is batch-invariant on this stack (replicas run the serial
    ``full_volume_inference`` loop to stay bit-identical), so batching
    buys amortised *dispatch* (IPC, pickle, queue hand-off), not faster
    GEMM.  Both numbers come straight out of ``BENCH_serving.json``.
    """

    service_s: float                # per-sample model time
    dispatch_overhead_s: float = 0.0  # per-invocation fixed cost
    max_batch: int = 8
    max_delay_s: float = 0.05       # batcher deadline budget

    def __post_init__(self):
        if self.service_s <= 0:
            raise ValueError("service_s must be positive")
        if self.dispatch_overhead_s < 0:
            raise ValueError("dispatch_overhead_s must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")

    def batch_seconds(self, batch: int) -> float:
        """Wall seconds one replica spends serving a batch of ``batch``."""
        if not 1 <= batch <= self.max_batch:
            raise ValueError(f"batch must be in [1, {self.max_batch}]")
        return self.dispatch_overhead_s + batch * self.service_s

    def replica_throughput_rps(self, batch: int) -> float:
        """Steady-state requests/s of one replica at a fixed batch size."""
        return batch / self.batch_seconds(batch)


@dataclass(frozen=True)
class ServingCapacityPlan:
    """Replica-pool sizing for a target arrival rate."""

    replicas: int
    batch: int                    # batch size the plan assumes
    target_rps: float
    capacity_rps: float           # pool throughput at that batch size
    latency_bound_s: float        # worst-case queue delay + one batch

    @property
    def headroom(self) -> float:
        """capacity / demand (>= 1.0 by construction)."""
        return self.capacity_rps / self.target_rps


@dataclass(frozen=True)
class ScatterGatherWorkload:
    """Head-of-line-blocking model for mixed large/small serving traffic.

    A large sliding-window request is ``chunks_per_large`` model
    invocations of ``chunk_s`` seconds each.  Dispatched **whole**, it
    occupies a replica for its entire service time and a small request
    arriving just behind it waits all of it.  **Scattered**, the large
    request becomes independent chunk tasks of ``chunks_per_task``
    chunks (the micro-batcher's ``max_batch``), and under weighted-fair
    release a small request waits at most the chunk task already in
    progress -- head-of-line blocking shrinks from the whole request to
    one task.  :meth:`small_p99_speedup` is the resulting analytic
    bound on the mixed-workload tail-latency win, the number the
    measured ``mixed_workload`` point in ``BENCH_serving.json``
    demonstrates empirically.
    """

    chunk_s: float                  # one patch-chunk invocation
    chunks_per_large: int           # chunk tasks one large request scatters to
    chunks_per_task: int = 1        # chunks coalesced per replica task
    dispatch_overhead_s: float = 0.0  # per-task fixed cost

    def __post_init__(self):
        if self.chunk_s <= 0:
            raise ValueError("chunk_s must be positive")
        if self.chunks_per_large < 1:
            raise ValueError("chunks_per_large must be >= 1")
        if not 1 <= self.chunks_per_task <= self.chunks_per_large:
            raise ValueError(
                "chunks_per_task must be in [1, chunks_per_large]")
        if self.dispatch_overhead_s < 0:
            raise ValueError("dispatch_overhead_s must be >= 0")

    def whole_request_seconds(self) -> float:
        """Replica occupancy of one monolithic large request."""
        return (self.dispatch_overhead_s
                + self.chunks_per_large * self.chunk_s)

    def chunk_task_seconds(self) -> float:
        """Replica occupancy of one scattered chunk task."""
        return (self.dispatch_overhead_s
                + self.chunks_per_task * self.chunk_s)

    def hol_blocking_s(self, scatter: bool) -> float:
        """Worst-case wait of a small request that arrives just after a
        large one started, under each dispatch mode."""
        return (self.chunk_task_seconds() if scatter
                else self.whole_request_seconds())

    def small_p99_speedup(self, small_service_s: float) -> float:
        """Analytic tail-latency ratio (whole-request / scatter--gather)
        for a small request of ``small_service_s`` caught behind a
        large one -- the bound the measured bench point should track."""
        if small_service_s < 0:
            raise ValueError("small_service_s must be >= 0")
        scatter = self.hol_blocking_s(True) + small_service_s
        whole = self.hol_blocking_s(False) + small_service_s
        return whole / scatter


def plan_serving_capacity(
    workload: ServingWorkload,
    target_rps: float,
    utilization: float = 0.8,
) -> ServingCapacityPlan:
    """Size the replica pool for ``target_rps`` open-loop traffic.

    Picks the batch size (<= ``max_batch``) that minimises replica count
    and, at a tie, latency; pools are sized so demand stays below
    ``utilization`` of capacity (queueing headroom).  The latency bound
    is the batcher's worst case: a request can wait ``max_delay_s`` for
    its batch to fill, then one full batch service time.
    """
    if target_rps <= 0:
        raise ValueError("target_rps must be positive")
    if not 0 < utilization <= 1:
        raise ValueError("utilization must be in (0, 1]")
    best: ServingCapacityPlan | None = None
    for batch in range(1, workload.max_batch + 1):
        per_replica = workload.replica_throughput_rps(batch)
        replicas = max(1, math.ceil(target_rps / (per_replica * utilization)))
        plan = ServingCapacityPlan(
            replicas=replicas,
            batch=batch,
            target_rps=target_rps,
            capacity_rps=replicas * per_replica,
            latency_bound_s=workload.max_delay_s + workload.batch_seconds(batch),
        )
        if (best is None
                or plan.replicas < best.replicas
                or (plan.replicas == best.replicas
                    and plan.latency_bound_s < best.latency_bound_s)):
            best = plan
    assert best is not None
    return best
