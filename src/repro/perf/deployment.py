"""Data-deployment cost model (the Fig 1 'data deployment' stage).

Before any training starts, the binarised dataset must reach the nodes
that will read it.  The paper lists "data transformation, data
deployment and process placement" as the pipeline stages that must be
"properly engineered" (Section I); this module prices the deployment
options so their impact on the Table I elapsed times can be bounded:

* ``shared_fs``  -- data stays on the parallel filesystem (GPFS);
  deployment is free but every epoch pays the (slower, contended)
  shared-FS read, modelled as a bandwidth haircut;
* ``stage_to_nodes`` -- copy the dataset once to node-local storage
  over the fabric, sequentially or with a broadcast tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.network import LinkSpec

__all__ = ["DatasetFootprint", "staging_time", "DeploymentPlan",
           "plan_deployment", "PAPER_DATASET_BYTES"]

# 484 subjects x (4 x 240 x 240 x 152 image + 240 x 240 x 152 mask) float32.
PAPER_DATASET_BYTES = 484 * (4 + 1) * 240 * 240 * 152 * 4


@dataclass(frozen=True)
class DatasetFootprint:
    """Size of the binarised training set."""

    total_bytes: int = PAPER_DATASET_BYTES

    def __post_init__(self):
        if self.total_bytes <= 0:
            raise ValueError("total_bytes must be positive")

    @property
    def gib(self) -> float:
        return self.total_bytes / 2**30


def staging_time(
    footprint: DatasetFootprint,
    num_nodes: int,
    link: LinkSpec,
    tree: bool = True,
) -> float:
    """Seconds to place a full copy on every node.

    ``tree=True`` uses a binomial broadcast (each node that holds the
    data forwards it): ceil(log2(nodes)) full-dataset transfers on the
    critical path.  ``tree=False`` pushes sequentially from one source.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if num_nodes == 1:
        return 0.0
    per_copy = link.latency_s + footprint.total_bytes / link.bandwidth_bytes_per_s
    hops = math.ceil(math.log2(num_nodes)) if tree else (num_nodes - 1)
    return hops * per_copy


@dataclass(frozen=True)
class DeploymentPlan:
    strategy: str
    upfront_seconds: float
    per_epoch_read_seconds: float

    def total_seconds(self, epochs: int) -> float:
        if epochs < 0:
            raise ValueError("epochs must be >= 0")
        return self.upfront_seconds + epochs * self.per_epoch_read_seconds


def plan_deployment(
    footprint: DatasetFootprint,
    num_nodes: int,
    fabric: LinkSpec,
    local_read_gbs: float = 2.0,
    shared_read_gbs: float = 0.8,
    strategy: str = "stage_to_nodes",
) -> DeploymentPlan:
    """Price a deployment strategy for one training run.

    Per-epoch read time assumes the whole training set is read once per
    epoch (prefetching overlaps it with compute; what matters for the
    comparison is the *relative* read cost).
    """
    if local_read_gbs <= 0 or shared_read_gbs <= 0:
        raise ValueError("read bandwidths must be positive")
    if strategy == "shared_fs":
        return DeploymentPlan(
            strategy=strategy,
            upfront_seconds=0.0,
            per_epoch_read_seconds=footprint.total_bytes / (shared_read_gbs * 1e9),
        )
    if strategy == "stage_to_nodes":
        return DeploymentPlan(
            strategy=strategy,
            upfront_seconds=staging_time(footprint, num_nodes, fabric),
            per_epoch_read_seconds=footprint.total_bytes / (local_read_gbs * 1e9),
        )
    raise ValueError(f"unknown strategy {strategy!r}")
