"""Reproduction report builder.

Assembles the full paper-vs-measured report programmatically (the
machine-generated core of EXPERIMENTS.md): Table I, the Fig 4 series,
the speed-up gap evidence and the cost decomposition, as one markdown
string.  Exposed on the CLI as ``distmis report``.
"""

from __future__ import annotations

from ..perf import (
    TABLE1_DATA_PARALLEL_S,
    TABLE1_DP_SPEEDUPS,
    TABLE1_EP_SPEEDUPS,
    TABLE1_EXPERIMENT_PARALLEL_S,
    TrialConfig,
    calibrated_model,
    epoch_breakdown,
    format_hms,
    summarize,
)
from ..perf.calibration import MARENOSTRUM_CTE_PROFILE
from .runner import DistMISRunner

__all__ = ["build_report"]


def build_report(num_runs: int = 3, base_seed: int = 0) -> str:
    """Regenerate the quantitative reproduction report as markdown."""
    runner = DistMISRunner()
    comparison = runner.simulate_comparison(num_runs=num_runs,
                                            base_seed=base_seed)
    calib = summarize(MARENOSTRUM_CTE_PROFILE)
    model = calibrated_model()

    lines: list[str] = []
    add = lines.append
    add("# DistMIS reproduction report (auto-generated)")
    add("")
    add(f"Calibration fit vs Table I: max cell error "
        f"{calib.max_abs_pct_error:.1f}%, mean "
        f"{calib.mean_abs_pct_error:.1f}% "
        "(see EXPERIMENTS.md for the disclosure).")
    add("")

    # --- Table I --------------------------------------------------------
    add("## Table I (ours vs paper)")
    add("")
    add("| #GPUs | dp ours | dp paper | ep ours | ep paper "
        "| ×dp ours | ×dp paper | ×ep ours | ×ep paper |")
    add("|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
    for row in comparison.table_rows():
        n = row["num_gpus"]
        add(
            f"| {n} | {format_hms(row['dp_elapsed'])} "
            f"| {format_hms(TABLE1_DATA_PARALLEL_S[n])} "
            f"| {format_hms(row['ep_elapsed'])} "
            f"| {format_hms(TABLE1_EXPERIMENT_PARALLEL_S[n])} "
            f"| {row['dp_speedup']:.2f} | {TABLE1_DP_SPEEDUPS[n]:.2f} "
            f"| {row['ep_speedup']:.2f} | {TABLE1_EP_SPEEDUPS[n]:.2f} |"
        )
    add("")

    # --- Fig 4 ----------------------------------------------------------
    add("## Figure 4 series")
    add("")
    add("```")
    add(comparison.render_figure_series())
    add("```")
    add("")

    gaps = dict(comparison.crossover_gap())
    add(f"Speed-up gap (experiment − data parallel) at 32 GPUs: "
        f"**+{gaps[32]:.2f}** (paper: +{15.19 - 13.18:.2f}); the gap is "
        f"positive at every n > 1 and widest at 32 GPUs: "
        f"{max(gaps, key=gaps.get) == 32}.")
    add("")

    # --- cost decomposition ------------------------------------------------
    add("## Data-parallel cost decomposition (one trial)")
    add("")
    cats = ["compute", "straggler_wait", "allreduce", "input",
            "framework", "validation", "fixed"]
    add("| #GPUs | " + " | ".join(cats) + " |")
    add("|---:|" + "---:|" * len(cats))
    cfg = TrialConfig()
    for n in (1, 4, 32):
        fr = epoch_breakdown(model, cfg, n).fractions()
        add(f"| {n} | " + " | ".join(f"{100 * fr[c]:.1f}%" for c in cats)
            + " |")
    add("")
    add("Useful compute share shrinks with scale while synchronisation "
        "grows — the structural reason the self-contained experiment-"
        "parallel trials win (paper Section IV-C).")
    add("")
    return "\n".join(lines)
