"""``DistMISRunner`` -- the public facade of the reproduction.

One object that exposes the paper's whole workflow:

* ``run_inprocess(method, num_gpus)`` -- really trains the search at
  laptop scale with exact distribution semantics (claims C2/C4);
* ``simulate(method, num_gpus)`` -- prices the search at paper scale on
  the calibrated MareNostrum model (claims C1/C3);
* ``simulate_comparison(...)`` -- the full Table I / Fig 4 sweep with
  repeated jittered runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.trace import Timeline
from ..perf.calibration import calibrated_model
from ..perf.costs import StepCostModel, TrialConfig
from ..perf.speedup import PAPER_GPU_COUNTS, paper_search_grid
from . import data_parallel, experiment_parallel
from .config import DEFAULT_SPACE, ExperimentSettings, HyperparameterSpace
from .pipeline import MISPipeline
from .results import ComparisonReport, MethodSeries

__all__ = ["DistMISRunner", "SimulatedRun"]

_METHODS = ("data_parallel", "experiment_parallel")


@dataclass
class SimulatedRun:
    method: str
    num_gpus: int
    elapsed_seconds: float
    timeline: Timeline


class DistMISRunner:
    """Entry point mirroring the paper's published framework."""

    def __init__(
        self,
        space: HyperparameterSpace | None = None,
        settings: ExperimentSettings | None = None,
        cost_model: StepCostModel | None = None,
        sim_trials: list[TrialConfig] | None = None,
    ):
        self.space = space or DEFAULT_SPACE
        self.settings = settings or ExperimentSettings()
        self.cost_model = cost_model or calibrated_model()
        self.sim_trials = sim_trials or paper_search_grid()
        self._pipeline: MISPipeline | None = None

    # -- shared dataset pipeline -------------------------------------------
    @property
    def pipeline(self) -> MISPipeline:
        if self._pipeline is None:
            self._pipeline = MISPipeline(self.settings)
        return self._pipeline

    # -- in-process (functional) backend --------------------------------------
    def run_inprocess(self, method: str, num_gpus: int = 1):
        """Execute the search for real at the configured laptop scale."""
        self._check_method(method)
        if method == "data_parallel":
            return data_parallel.run_search_inprocess(
                self.space, self.settings, num_gpus, pipeline=self.pipeline
            )
        if num_gpus != 1:
            # Trials are independent 1-GPU runs; concurrency changes
            # wall-clock only, which the simulated backend prices.
            raise ValueError(
                "in-process experiment parallelism executes trials as "
                "1-GPU runs; use simulate() for multi-GPU timing"
            )
        return experiment_parallel.run_search_inprocess(
            self.space, self.settings, pipeline=self.pipeline
        )

    # -- simulated (paper-scale) backend ---------------------------------------
    def simulate(self, method: str, num_gpus: int,
                 seed: int | None = None,
                 gpus_per_trial: int | None = None) -> SimulatedRun:
        """Price the full-scale search on the calibrated cluster model.

        ``method`` may also be ``"hybrid"`` (multi-GPU trials under Tune
        placement, see :mod:`repro.core.hybrid`); ``gpus_per_trial``
        then selects the per-trial width (default: one node).
        """
        if method == "hybrid":
            from .hybrid import simulate_hybrid_search

            g = gpus_per_trial or min(num_gpus,
                                      self.cost_model.cluster.node.num_gpus)
            result, timeline = simulate_hybrid_search(
                self.sim_trials, self.cost_model, num_gpus, g, seed=seed
            )
            return SimulatedRun(method=f"hybrid[g={g}]", num_gpus=num_gpus,
                                elapsed_seconds=result.elapsed_seconds,
                                timeline=timeline)
        self._check_method(method)
        mod = (
            data_parallel if method == "data_parallel" else experiment_parallel
        )
        elapsed, timeline = mod.simulate_search(
            self.sim_trials, self.cost_model, num_gpus, seed=seed
        )
        return SimulatedRun(method=method, num_gpus=num_gpus,
                            elapsed_seconds=elapsed, timeline=timeline)

    def simulate_comparison(
        self,
        gpu_counts: tuple[int, ...] = PAPER_GPU_COUNTS,
        num_runs: int = 3,
        base_seed: int = 0,
    ) -> ComparisonReport:
        """The Table I / Fig 4 experiment: both methods at every GPU
        count, ``num_runs`` jittered repetitions each (the paper ran
        every execution three times and reports the average)."""
        if num_runs < 1:
            raise ValueError("num_runs must be >= 1")
        series = {}
        for method in _METHODS:
            runs = []
            for n in gpu_counts:
                runs.append(
                    [
                        self.simulate(method, n, seed=base_seed + 17 * r + 1)
                        .elapsed_seconds
                        for r in range(num_runs)
                    ]
                )
            series[method] = MethodSeries(
                method=method, gpu_counts=list(gpu_counts), runs=runs
            )
        return ComparisonReport(series["data_parallel"],
                                series["experiment_parallel"])

    @staticmethod
    def _check_method(method: str) -> None:
        if method not in _METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {_METHODS}"
            )
