"""``DistMISRunner`` -- the public facade of the reproduction.

One object that exposes the paper's whole workflow:

* ``run_inprocess(method, num_gpus)`` -- really trains the search at
  laptop scale with exact distribution semantics (claims C2/C4);
* ``simulate(method, num_gpus)`` -- prices the search at paper scale on
  the calibrated MareNostrum model (claims C1/C3);
* ``simulate_comparison(...)`` -- the full Table I / Fig 4 sweep with
  repeated jittered runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.failures import FailureModel, RetryRecord
from ..cluster.trace import Timeline
from ..fault_tolerance import RetryPolicy
from ..perf.calibration import calibrated_model
from ..perf.costs import StepCostModel, TrialConfig
from ..perf.speedup import PAPER_GPU_COUNTS, paper_search_grid
from ..telemetry import get_hub
from . import data_parallel, experiment_parallel
from .config import DEFAULT_SPACE, ExperimentSettings, HyperparameterSpace
from .pipeline import MISPipeline
from .results import ComparisonReport, MethodSeries

__all__ = ["DistMISRunner", "SimulatedRun"]

_METHODS = ("data_parallel", "experiment_parallel")


@dataclass
class SimulatedRun:
    method: str
    num_gpus: int
    elapsed_seconds: float
    timeline: Timeline
    # populated only for runs priced under a failure model
    num_failures: int = 0
    wasted_seconds: float = 0.0
    num_abandoned: int = 0
    retries: list[RetryRecord] = field(default_factory=list)


class DistMISRunner:
    """Entry point mirroring the paper's published framework."""

    def __init__(
        self,
        space: HyperparameterSpace | None = None,
        settings: ExperimentSettings | None = None,
        cost_model: StepCostModel | None = None,
        sim_trials: list[TrialConfig] | None = None,
        telemetry=None,
    ):
        self.space = space or DEFAULT_SPACE
        self.settings = settings or ExperimentSettings()
        self.cost_model = cost_model or calibrated_model()
        self.sim_trials = sim_trials or paper_search_grid()
        # default: the process-wide hub (the null sink unless installed)
        self.telemetry = telemetry if telemetry is not None else get_hub()
        self._pipeline: MISPipeline | None = None

    # -- shared dataset pipeline -------------------------------------------
    @property
    def pipeline(self) -> MISPipeline:
        if self._pipeline is None:
            self._pipeline = MISPipeline(self.settings,
                                         telemetry=self.telemetry)
        return self._pipeline

    # -- in-process (functional) backend --------------------------------------
    def run_inprocess(self, method: str, num_gpus: int = 1,
                      executor: str = "serial",
                      max_workers: int | None = None,
                      progress=None):
        """Execute the search for real at the configured laptop scale.

        For ``method="experiment_parallel"``, ``executor="process"``
        runs the independent trials on ``max_workers`` worker processes
        (true multi-core experiment parallelism, result-identical to the
        serial executor); trials remain 1-virtual-GPU runs either way.

        With a live telemetry hub the run emits per-step / per-epoch
        metrics and nested spans, and finishes by writing the run
        directory (manifest, metrics JSONL + Prometheus text, merged
        Chrome trace) when the hub has one configured.  ``progress`` (a
        :class:`~repro.telemetry.ProgressReporter`) renders a live
        Tune-style trial table while the search runs.
        """
        self._check_method(method)
        hub = self.telemetry
        with hub.tracer.span(f"run_inprocess[{method}]", category="run",
                             num_gpus=num_gpus):
            if method == "data_parallel":
                if executor != "serial":
                    raise ValueError(
                        "the process executor parallelises independent "
                        "trials; data_parallel trains one trial at a "
                        "time (use method='experiment_parallel')"
                    )
                result = data_parallel.run_search_inprocess(
                    self.space, self.settings, num_gpus,
                    pipeline=self.pipeline, telemetry=hub,
                )
            else:
                if num_gpus != 1 and executor == "serial":
                    # Trials are independent 1-GPU runs; concurrency
                    # changes wall-clock only, which the simulated
                    # backend prices (or the process executor executes).
                    raise ValueError(
                        "in-process experiment parallelism executes "
                        "trials as 1-GPU runs; use simulate() for "
                        "multi-GPU timing or executor='process' for "
                        "real multi-core execution"
                    )
                result = experiment_parallel.run_search_inprocess(
                    self.space, self.settings, pipeline=self.pipeline,
                    telemetry=hub, executor=executor,
                    max_workers=max_workers, progress=progress,
                )
        best = result.best()
        hub.finalize_run(
            kind=f"inprocess/{method}",
            config={"space": self.space.axes, "num_gpus": num_gpus,
                    "executor": executor, "max_workers": max_workers,
                    "epochs": self.settings.epochs},
            seed=self.settings.seed,
            final_metrics={
                "best_val_dice": best.val_dice,
                "best_test_dice": best.test_dice,
                "best_config": best.config,
                "elapsed_seconds": result.elapsed_seconds,
                "num_trials": len(result.outcomes),
            },
        )
        return result

    # -- simulated (paper-scale) backend ---------------------------------------
    def simulate(self, method: str, num_gpus: int,
                 seed: int | None = None,
                 gpus_per_trial: int | None = None,
                 failures: FailureModel | None = None,
                 retry_policy: RetryPolicy | None = None) -> SimulatedRun:
        """Price the full-scale search on the calibrated cluster model.

        ``method`` may also be ``"hybrid"`` (multi-GPU trials under Tune
        placement, see :mod:`repro.core.hybrid`); ``gpus_per_trial``
        then selects the per-trial width (default: one node).  The run's
        simulated timeline is attached to the telemetry hub, so the
        exported Chrome trace merges simulated and real spans.

        ``failures`` (a :class:`FailureModel`) re-prices the
        experiment-parallel search under exponential GPU failures with
        per-epoch checkpoint granularity and the shared ``retry_policy``
        semantics; the run then also reports ``num_failures``,
        ``wasted_seconds``, ``num_abandoned`` and per-trial ``retries``,
        and the timeline shows every failed attempt.
        """
        if failures is not None:
            run = self._simulate_failures(num_gpus, failures, retry_policy,
                                          seed=seed, method=method)
        else:
            run = self._simulate_one(method, num_gpus, seed=seed,
                                     gpus_per_trial=gpus_per_trial)
        final = {
            "elapsed_seconds": run.elapsed_seconds,
            "mean_utilization": run.timeline.mean_utilization(),
        }
        if failures is not None:
            final.update(
                num_failures=run.num_failures,
                wasted_seconds=run.wasted_seconds,
                num_abandoned=run.num_abandoned,
            )
        self.telemetry.finalize_run(
            kind=f"simulate/{run.method}",
            config={"num_gpus": num_gpus, "gpus_per_trial": gpus_per_trial,
                    **({"mtbf_s": failures.mtbf_s,
                        "repair_s": failures.repair_s}
                       if failures is not None else {})},
            seed=seed,
            final_metrics=final,
        )
        return run

    def _simulate_failures(self, num_gpus: int, failures: FailureModel,
                           retry_policy: RetryPolicy | None,
                           seed: int | None = None,
                           method: str = "experiment_parallel") -> SimulatedRun:
        if method != "experiment_parallel":
            raise ValueError(
                "failure injection is modelled for the experiment-parallel "
                f"method (independent 1-GPU trials), not {method!r}"
            )
        hub = self.telemetry
        with hub.tracer.span("simulate[experiment_parallel+failures]",
                             category="run", num_gpus=num_gpus,
                             mtbf_s=failures.mtbf_s):
            elapsed, result = experiment_parallel.simulate_search_with_failures(
                self.sim_trials, self.cost_model, num_gpus, failures,
                retry_policy=retry_policy, seed=seed, telemetry=hub,
            )
        hub.attach_timeline(result.timeline)
        return SimulatedRun(
            method="experiment_parallel+failures", num_gpus=num_gpus,
            elapsed_seconds=elapsed, timeline=result.timeline,
            num_failures=result.num_failures,
            wasted_seconds=result.wasted_seconds,
            num_abandoned=result.num_abandoned,
            retries=result.retries,
        )

    def _simulate_one(self, method: str, num_gpus: int,
                      seed: int | None = None,
                      gpus_per_trial: int | None = None) -> SimulatedRun:
        hub = self.telemetry
        if method == "hybrid":
            from .hybrid import simulate_hybrid_search

            g = gpus_per_trial or min(num_gpus,
                                      self.cost_model.cluster.node.num_gpus)
            with hub.tracer.span(f"simulate[hybrid g={g}]", category="run",
                                 num_gpus=num_gpus):
                result, timeline = simulate_hybrid_search(
                    self.sim_trials, self.cost_model, num_gpus, g, seed=seed
                )
            hub.attach_timeline(timeline)
            return SimulatedRun(method=f"hybrid[g={g}]", num_gpus=num_gpus,
                                elapsed_seconds=result.elapsed_seconds,
                                timeline=timeline)
        self._check_method(method)
        mod = (
            data_parallel if method == "data_parallel" else experiment_parallel
        )
        with hub.tracer.span(f"simulate[{method}]", category="run",
                             num_gpus=num_gpus):
            if mod is experiment_parallel:
                elapsed, timeline = mod.simulate_search(
                    self.sim_trials, self.cost_model, num_gpus, seed=seed,
                    telemetry=hub,
                )
            else:
                elapsed, timeline = mod.simulate_search(
                    self.sim_trials, self.cost_model, num_gpus, seed=seed
                )
        hub.attach_timeline(timeline)
        hub.metrics.gauge(
            "sim_elapsed_seconds", "simulated search elapsed time",
            ("method",)).labels(method=method).set(elapsed)
        return SimulatedRun(method=method, num_gpus=num_gpus,
                            elapsed_seconds=elapsed, timeline=timeline)

    def simulate_comparison(
        self,
        gpu_counts: tuple[int, ...] = PAPER_GPU_COUNTS,
        num_runs: int = 3,
        base_seed: int = 0,
    ) -> ComparisonReport:
        """The Table I / Fig 4 experiment: both methods at every GPU
        count, ``num_runs`` jittered repetitions each (the paper ran
        every execution three times and reports the average)."""
        if num_runs < 1:
            raise ValueError("num_runs must be >= 1")
        hub = self.telemetry
        series = {}
        with hub.tracer.span("simulate_comparison", category="run",
                             num_runs=num_runs):
            for method in _METHODS:
                runs = []
                for n in gpu_counts:
                    runs.append(
                        [
                            self._simulate_one(
                                method, n, seed=base_seed + 17 * r + 1
                            ).elapsed_seconds
                            for r in range(num_runs)
                        ]
                    )
                series[method] = MethodSeries(
                    method=method, gpu_counts=list(gpu_counts), runs=runs
                )
        report = ComparisonReport(series["data_parallel"],
                                  series["experiment_parallel"])
        hub.finalize_run(
            kind="simulate_comparison",
            config={"gpu_counts": list(gpu_counts), "num_runs": num_runs},
            seed=base_seed,
            final_metrics={
                "data_parallel_mean_s": report.dp.mean(),
                "experiment_parallel_mean_s": report.ep.mean(),
            },
        )
        return report

    @staticmethod
    def _check_method(method: str) -> None:
        if method not in _METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {_METHODS}"
            )
