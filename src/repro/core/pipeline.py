"""The end-to-end training pipeline of Fig 1 (in-process backend).

Stages, exactly as the paper lays them out:

1. **Offline binarisation** (Section III-B1): subjects are pre-processed
   once (crop -> standardise -> binary labels) and written to
   TFRecord-style files, so no epoch ever repeats the transform;
2. **Input pipeline**: a tf.data-style dataset reads the records with
   interleave / shuffle / batch / prefetch;
3. **Training**: the 3D U-Net under soft Dice, Adam at the scaled
   learning rate, for a fixed epoch budget;
4. **Validation**: per-epoch Dice on the held-out split; final Dice on
   the test split.

``MISPipeline`` owns stages 1-2 and exposes epoch iterators;
``train_trial`` drives stages 3-4 for one hyper-parameter configuration
on ``num_replicas`` virtual GPUs via the Ray-SGD-analogue trainer.
"""

from __future__ import annotations

import math
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..data.dataset import Dataset, PipelineStats
from ..data.nifti import read_nifti, write_nifti
from ..data.preprocess import preprocess_subject
from ..data.records import (
    IndexedRecordReader,
    RecordIndexError,
    read_example_file,
    write_example_file,
)
from ..data.splits import DatasetSplit, split_indices
from ..data.synthetic_brats import Subject, SyntheticBraTS
from ..nn.metrics import batch_dice
from ..raysim.sgd import DataParallelTrainer
from .checkpoint import CheckpointManager, load_checkpoint
from .config import ExperimentSettings, build_loss, build_model, build_optimizer

__all__ = ["MISPipeline", "ArrayBackedPipeline", "EpochRecord",
           "TrialOutcome", "train_trial"]


@dataclass
class EpochRecord:
    epoch: int
    train_loss: float
    val_dice: float
    lr: float
    seconds: float


@dataclass
class TrialOutcome:
    """Everything a finished trial reports back (the Ray callback data)."""

    config: dict
    history: list[EpochRecord] = field(default_factory=list)
    val_dice: float = 0.0
    test_dice: float = 0.0
    num_replicas: int = 1
    wall_seconds: float = 0.0
    converged_epoch: int | None = None

    def best_val_dice(self) -> float:
        return max((r.val_dice for r in self.history), default=0.0)


class MISPipeline:
    """Dataset preparation + input pipeline for the in-process backend.

    ``input_mode`` selects between the paper's two ingestion paths
    (Section III-B1): ``"records"`` (the default) binarises offline once
    and streams pre-processed records per epoch, while ``"nifti"``
    mimics the naive baseline -- the cohort stays as raw NIfTI files and
    every epoch re-decodes and re-preprocesses each subject online.
    Both paths yield bit-identical tensors; only where the time goes
    differs, which is exactly what the profiler's input-bound % verdict
    measures (claim C3).
    """

    def __init__(self, settings: ExperimentSettings,
                 record_dir: str | Path | None = None,
                 stats: PipelineStats | None = None,
                 telemetry=None,
                 input_mode: str = "records"):
        if input_mode not in ("records", "nifti"):
            raise ValueError(
                f"input_mode must be 'records' or 'nifti', got {input_mode!r}"
            )
        if telemetry is None:
            from ..telemetry import get_hub

            telemetry = get_hub()
        self.telemetry = telemetry
        self.settings = settings
        self.input_mode = input_mode
        self.stats = stats or PipelineStats(telemetry=telemetry)
        self.generator = SyntheticBraTS(
            num_subjects=settings.num_subjects,
            volume_shape=settings.volume_shape,
            seed=settings.data_seed,
        )
        self.split: DatasetSplit = split_indices(settings.num_subjects,
                                                 seed=settings.data_seed)
        self._record_dir = (
            Path(record_dir)
            if record_dir is not None
            else Path(tempfile.mkdtemp(prefix="distmis_records_"))
        )
        self._record_files: dict[str, Path] = {}
        self._nifti_files: dict[str, list[tuple[Path, Path]]] = {}
        self._divisor = 2 ** (settings.depth - 1)

    # -- stage 1: offline binarisation --------------------------------------
    def binarize(self) -> dict[str, Path]:
        """Pre-process every subject once and write one record file per
        split.  Idempotent; returns the file map."""
        if self._record_files:
            return self._record_files
        for name, indices in (
            ("train", self.split.train),
            ("val", self.split.val),
            ("test", self.split.test),
        ):
            path = self._record_dir / f"{name}.rec"
            t0 = time.perf_counter()

            def examples():
                for i in indices:
                    ex = preprocess_subject(
                        self.generator[i], divisor=self._divisor
                    )
                    yield {"image": ex.image, "mask": ex.mask}

            write_example_file(path, examples())
            self.stats.add("binarize." + name, time.perf_counter() - t0,
                           len(indices))
            self._record_files[name] = path
        return self._record_files

    # -- stage 1': the raw-NIfTI baseline ------------------------------------
    def materialize_nifti(self) -> dict[str, list[tuple[Path, Path]]]:
        """Write every subject as raw NIfTI (image + label volume), the
        on-disk format the naive online pipeline ingests.  Idempotent;
        returns ``{split: [(image_path, label_path), ...]}``."""
        if self._nifti_files:
            return self._nifti_files
        for name, indices in (
            ("train", self.split.train),
            ("val", self.split.val),
            ("test", self.split.test),
        ):
            t0 = time.perf_counter()
            pairs: list[tuple[Path, Path]] = []
            for i in indices:
                subject = self.generator[i]
                img = self._record_dir / f"{subject.subject_id}_img.nii"
                lbl = self._record_dir / f"{subject.subject_id}_lbl.nii"
                write_nifti(img, subject.image,
                            description=subject.subject_id)
                write_nifti(lbl, subject.label)
                pairs.append((img, lbl))
            self.stats.add("nifti_write." + name,
                           time.perf_counter() - t0, len(indices))
            self._nifti_files[name] = pairs
        return self._nifti_files

    def _online_dataset(self, split: str) -> Dataset:
        """Per-epoch online chain of the raw-NIfTI baseline: decode both
        volumes, then run the full preprocess transform -- the work
        offline binarisation does exactly once."""
        files = self.materialize_nifti()
        if split not in files:
            raise ValueError(f"unknown split {split!r}")
        pairs = files[split]

        def source():
            return iter(pairs)

        def decode(pair):
            img, lbl = read_nifti(pair[0]), read_nifti(pair[1])
            return Subject(subject_id=img.description, image=img.data,
                           label=lbl.data)

        ds = Dataset.from_generator(source, stats=self.stats)
        ds = ds.map(decode, stage="nifti_decode")
        return ds.map(
            lambda s: preprocess_subject(s, divisor=self._divisor).as_tuple(),
            stage="transform")

    # -- stage 2: input pipeline ---------------------------------------------
    def dataset(self, split: str, batch_size: int, shuffle_seed: int | None = None,
                prefetch: int = 0, augmenter=None) -> Dataset:
        """tf.data-style stream of ``(image_batch, mask_batch)`` tuples.

        ``augmenter`` (a :class:`repro.data.augment.Augmenter`) is the
        online complement of offline binarisation: applied per element
        after the record read, before batching.  Its RNG advances across
        iterations, so successive epochs see *different* augmentations
        while a re-run of the whole trial (fresh augmenter, same seed)
        replays exactly.
        """
        if self.input_mode == "nifti":
            ds = self._online_dataset(split)
        else:
            files = self.binarize()
            if split not in files:
                raise ValueError(f"unknown split {split!r}")
            path = files[split]
            stats = self.stats

            def source():
                it = read_example_file(path)
                while True:
                    t0 = time.perf_counter()
                    try:
                        ex = next(it)
                    except StopIteration:
                        return
                    stats.add("record_read", time.perf_counter() - t0)
                    yield ex["image"], ex["mask"]

            ds = Dataset.from_generator(source, stats=self.stats)
        if shuffle_seed is not None:
            ds = ds.shuffle(buffer_size=max(2, batch_size * 4), seed=shuffle_seed)
        if augmenter is not None:
            ds = ds.map(augmenter.map_fn(), stage="augment")
        ds = ds.batch(batch_size)
        if prefetch:
            ds = ds.prefetch(prefetch)
        return ds

    def load_split_arrays(self, split: str) -> tuple[np.ndarray, np.ndarray]:
        """Whole split as two stacked arrays (for validation passes).

        Reads through the index sidecar when present: the per-record
        decode is a zero-copy view over the file mapping and the only
        copy is the final stack.  Falls back to the sequential verifying
        scan when the sidecar is missing or bad.
        """
        if self.input_mode == "nifti":
            batches = list(self._online_dataset(split))
            return (np.stack([img for img, _ in batches]),
                    np.stack([m for _, m in batches]))
        files = self.binarize()
        try:
            reader = IndexedRecordReader(files[split])
            examples = list(reader)
        except RecordIndexError:
            examples = list(read_example_file(files[split]))
        images = [ex["image"] for ex in examples]
        masks = [ex["mask"] for ex in examples]
        return np.stack(images), np.stack(masks)

    def split_arrays(self) -> dict[str, np.ndarray]:
        """Every split stacked, keyed ``{split}_images`` /
        ``{split}_masks`` -- the bundle a
        :class:`repro.execpool.SharedArrayStore` publishes to workers."""
        out: dict[str, np.ndarray] = {}
        for split in ("train", "val", "test"):
            images, masks = self.load_split_arrays(split)
            out[f"{split}_images"] = images
            out[f"{split}_masks"] = masks
        return out

    def steps_per_epoch(self, batch_size: int) -> int:
        return math.ceil(len(self.split.train) / batch_size)


class ArrayBackedPipeline:
    """The :class:`MISPipeline` surface served from in-memory arrays.

    Built by a pool worker from shared-memory views
    (:meth:`repro.execpool.SharedArrayHandle.attach`), so the worker
    trains on the parent's binarised splits without re-generating,
    re-decoding, or copying them.  ``dataset()`` applies the identical
    transformation chain (shuffle buffer size and seed included), so a
    trial trained here is bit-identical to one fed by the record-file
    pipeline.
    """

    def __init__(self, settings: ExperimentSettings,
                 arrays, telemetry=None,
                 stats: PipelineStats | None = None):
        if telemetry is None:
            from ..telemetry import get_hub

            telemetry = get_hub()
        self.telemetry = telemetry
        self.settings = settings
        self.stats = stats or PipelineStats(telemetry=telemetry)
        # `arrays` may be a plain {name: ndarray} mapping or an
        # AttachedArrays; keep the object itself referenced so a
        # shared-memory mapping cannot be unmapped under our views.
        self._owner = arrays
        if hasattr(arrays, "arrays"):
            arrays = arrays.arrays
        self._splits: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for split in ("train", "val", "test"):
            try:
                self._splits[split] = (arrays[f"{split}_images"],
                                       arrays[f"{split}_masks"])
            except KeyError as exc:
                raise ValueError(
                    f"array bundle is missing {exc.args[0]!r}"
                ) from None

    def dataset(self, split: str, batch_size: int,
                shuffle_seed: int | None = None, prefetch: int = 0,
                augmenter=None) -> Dataset:
        if split not in self._splits:
            raise ValueError(f"unknown split {split!r}")
        images, masks = self._splits[split]

        def source():
            return ((images[i], masks[i]) for i in range(images.shape[0]))

        ds = Dataset.from_generator(source, stats=self.stats)
        if shuffle_seed is not None:
            ds = ds.shuffle(buffer_size=max(2, batch_size * 4),
                            seed=shuffle_seed)
        if augmenter is not None:
            ds = ds.map(augmenter.map_fn(), stage="augment")
        ds = ds.batch(batch_size)
        if prefetch:
            ds = ds.prefetch(prefetch)
        return ds

    def load_split_arrays(self, split: str) -> tuple[np.ndarray, np.ndarray]:
        if split not in self._splits:
            raise ValueError(f"unknown split {split!r}")
        return self._splits[split]

    def steps_per_epoch(self, batch_size: int) -> int:
        return math.ceil(self._splits["train"][0].shape[0] / batch_size)


def train_trial(
    config: dict,
    settings: ExperimentSettings,
    pipeline: MISPipeline,
    num_replicas: int = 1,
    reporter=None,
    convergence_patience: int | None = None,
    convergence_tol: float = 5e-3,
    checkpoint_manager: CheckpointManager | None = None,
    telemetry=None,
) -> TrialOutcome:
    """Train one hyper-parameter configuration end to end.

    ``num_replicas`` > 1 trains data-parallel on virtual GPUs with the
    exact sharded-gradient semantics; the global batch is
    ``batch_per_replica x num_replicas`` with the learning rate scaled
    accordingly, the paper's Section IV-B recipe.  ``reporter`` is the
    Ray-Tune-style per-epoch callback; returning False stops the trial
    (ASHA).  ``convergence_patience`` implements the paper's observation
    that training stabilises long before the epoch budget (E7): the
    epoch after which the best validation Dice stopped improving by
    ``convergence_tol`` for that many epochs is recorded (training still
    runs the full budget, as the paper's did).  ``telemetry`` (default:
    the pipeline's hub) receives per-epoch spans and metrics on top of
    the trainer's per-step stream.

    Fault tolerance: with a ``checkpoint_manager`` every epoch is
    checkpointed (model + optimizer + running best Dice) and the path is
    published through the reporter (``checkpoint=...``); if the reporter
    carries a ``resume_from`` handle (a crashed attempt being retried
    under ``RetryPolicy(resume="checkpoint")``), the checkpoint is
    restored into every replica and training continues at the next
    epoch.  Shuffling is re-seeded per epoch, so a resumed run is
    bit-identical to an uninterrupted one -- except under
    ``settings.augment``, whose augmenter RNG advances across epochs.
    """
    t_start = time.perf_counter()
    if telemetry is None:
        telemetry = getattr(pipeline, "telemetry", None)
        if telemetry is None:
            from ..telemetry import get_hub

            telemetry = get_hub()
    global_batch = settings.batch_per_replica * num_replicas
    steps = pipeline.steps_per_epoch(global_batch)

    trainer = DataParallelTrainer(
        model_factory=lambda: build_model(config, settings),
        loss=build_loss(config),
        optimizer_factory=lambda m: build_optimizer(
            config, settings, m, num_replicas=num_replicas,
            steps_per_epoch=steps,
        ),
        num_replicas=num_replicas,
        sync_batchnorm=settings.sync_batchnorm,
        telemetry=telemetry,
    )
    m_epoch_seconds = telemetry.metrics.histogram(
        "train_epoch_seconds", "wall-clock per training epoch")
    m_val_dice = telemetry.metrics.gauge(
        "val_dice", "validation Dice after the last epoch")
    augmenter = None
    if settings.augment:
        from ..data.augment import Augmenter, random_flip, random_gaussian_noise

        augmenter = Augmenter(
            [random_flip(p=0.5), random_gaussian_noise(0.02)],
            seed=settings.seed * 31 + 5,
        )
    val_x, val_y = pipeline.load_split_arrays("val")

    outcome = TrialOutcome(config=dict(config), num_replicas=num_replicas)
    best = -1.0
    stale = 0
    start_epoch = 0
    restored_best = 0.0
    resume = getattr(reporter, "resume_from", None)
    if checkpoint_manager is not None and resume is not None and resume.path:
        meta = {}
        for rep, opt in zip(trainer.replicas, trainer.optimizers):
            meta = load_checkpoint(resume.path, rep, opt)
        start_epoch = int(meta.get("epoch", resume.epoch)) + 1
        restored_best = float(meta.get("best_val_dice",
                                       meta.get("val_dice", 0.0)))
        telemetry.metrics.counter(
            "trial_restores_total",
            "trainings resumed from a checkpoint").inc()
    ckpt_best = restored_best
    try:
        for epoch in range(start_epoch, settings.epochs):
            t0 = time.perf_counter()
            losses = []
            lr = 0.0
            with telemetry.tracer.span("epoch", category="train",
                                       epoch=epoch):
                ds = pipeline.dataset(
                    "train", global_batch,
                    shuffle_seed=settings.seed * 10_007 + epoch,
                    augmenter=augmenter,
                )
                # Manual iteration so the blocking time on the input
                # pipeline lands in the "data_wait" step bucket.
                it = iter(ds)
                while True:
                    t_wait = time.perf_counter()
                    batch = next(it, None)
                    telemetry.on_step_bucket(
                        "data_wait", time.perf_counter() - t_wait)
                    if batch is None:
                        break
                    x, y = batch
                    if x.shape[0] < num_replicas:
                        continue  # drop a remainder smaller than the replica set
                    out = trainer.train_step(x, y)
                    losses.append(out["loss"])
                    lr = out["lr"]

                with telemetry.tracer.span("validation", category="eval",
                                           epoch=epoch):
                    pred = trainer.model.predict(val_x)
                    val_dice = float(batch_dice(pred, val_y).mean())
            m_epoch_seconds.observe(time.perf_counter() - t0)
            m_val_dice.set(val_dice)
            rec = EpochRecord(
                epoch=epoch,
                train_loss=float(np.mean(losses)) if losses else float("nan"),
                val_dice=val_dice,
                lr=lr,
                seconds=time.perf_counter() - t0,
            )
            outcome.history.append(rec)

            if convergence_patience is not None and outcome.converged_epoch is None:
                if val_dice > best + convergence_tol:
                    best = val_dice
                    stale = 0
                else:
                    stale += 1
                    if stale >= convergence_patience:
                        outcome.converged_epoch = epoch - stale + 1

            ckpt_extra = {}
            if checkpoint_manager is not None:
                ckpt_best = max(ckpt_best, val_dice)
                t_ck = time.perf_counter()
                path = checkpoint_manager.save(
                    trainer.model, trainer.optimizers[0], epoch=epoch,
                    val_dice=val_dice, best_val_dice=ckpt_best,
                )
                telemetry.on_step_bucket(
                    "checkpoint", time.perf_counter() - t_ck)
                ckpt_extra["checkpoint"] = str(path)

            if reporter is not None:
                if not reporter(epoch=epoch, train_loss=rec.train_loss,
                                val_dice=val_dice, lr=lr, **ckpt_extra):
                    break

        outcome.val_dice = max(outcome.best_val_dice(), restored_best)
        test_x, test_y = pipeline.load_split_arrays("test")
        with telemetry.tracer.span("test_eval", category="eval"):
            pred = trainer.model.predict(test_x)
            outcome.test_dice = float(batch_dice(pred, test_y).mean())
    finally:
        trainer.shutdown()
    outcome.wall_seconds = time.perf_counter() - t_start
    return outcome
