"""Hybrid distribution: experiment parallelism over multi-GPU trials.

The paper benchmarks the two extremes -- every trial on ALL GPUs (data
parallel) or every trial on ONE GPU (experiment parallel) -- and cites
hybrid-parallelism work as related (Section II-A).  The middle ground
matters precisely in the paper's own configuration: with 20 trials on
32 GPUs, pure experiment parallelism leaves 12 GPUs idle and its
makespan is pinned to the longest trial.  Giving each trial ``g`` GPUs
trades per-trial speed-up (sub-linear, it pays the data-parallel
overheads) against trial concurrency (``floor(n / g)`` at a time).

:func:`simulate_hybrid_search` prices any ``gpus_per_trial`` on the
event simulator; :func:`best_gpus_per_trial` sweeps the feasible
values.  ``g = 1`` recovers the experiment-parallel method, ``g = n``
the data-parallel method (both asserted by tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.simulator import Resource, Simulator
from ..cluster.trace import Timeline
from ..perf.costs import StepCostModel, TrialConfig
from ..perf.speedup import _trial_jitters

__all__ = ["HybridResult", "simulate_hybrid_search", "best_gpus_per_trial"]


@dataclass(frozen=True)
class HybridResult:
    gpus_per_trial: int
    concurrent_slots: int
    elapsed_seconds: float
    mean_gpu_utilization: float


def simulate_hybrid_search(
    trials: list[TrialConfig],
    model: StepCostModel,
    num_gpus: int,
    gpus_per_trial: int,
    seed: int | None = None,
) -> tuple[HybridResult, Timeline]:
    """FIFO placement of ``g``-GPU trials onto ``floor(n/g)`` slots.

    Each trial's duration is the *data-parallel* trial time at ``g``
    GPUs (so it inherits the straggler/comm overheads), plus the Tune
    per-trial overhead; Ray cluster startup over the hosting nodes is
    charged once, as in the pure methods.
    """
    if gpus_per_trial < 1:
        raise ValueError("gpus_per_trial must be >= 1")
    if gpus_per_trial > num_gpus:
        raise ValueError(
            f"gpus_per_trial {gpus_per_trial} exceeds {num_gpus} GPUs"
        )
    if num_gpus > model.cluster.total_gpus:
        raise ValueError(
            f"{num_gpus} GPUs requested, cluster has {model.cluster.total_gpus}"
        )
    slots = num_gpus // gpus_per_trial
    jitters = _trial_jitters(model, len(trials), seed)
    durations = [
        model.trial_time(cfg, gpus_per_trial, jitter=float(j))
        + model.params.tune_trial_overhead_s
        for cfg, j in zip(trials, jitters)
    ]

    sim = Simulator()
    pool = Resource(sim, capacity=slots, name="trial_slots")
    timeline = Timeline()

    def trial_proc(idx: int, duration: float):
        yield pool.request()
        start = sim.now
        yield sim.timeout(duration)
        timeline.record(
            f"trial_{idx:02d}", start, sim.now,
            resource=f"slot{idx % slots}", category="train",
            gpus=gpus_per_trial,
        )
        pool.release()

    for idx, d in enumerate(durations):
        sim.process(trial_proc(idx, d))
    makespan = sim.run()

    nodes = model.cluster.nodes_for(num_gpus)
    startup = model.params.startup_per_node_s * nodes if num_gpus > 1 else 0.0
    elapsed = makespan + startup

    busy_gpu_seconds = sum(durations) * gpus_per_trial
    util = busy_gpu_seconds / (elapsed * num_gpus) if elapsed > 0 else 0.0
    return (
        HybridResult(
            gpus_per_trial=gpus_per_trial,
            concurrent_slots=slots,
            elapsed_seconds=elapsed,
            mean_gpu_utilization=min(1.0, util),
        ),
        timeline,
    )


def best_gpus_per_trial(
    trials: list[TrialConfig],
    model: StepCostModel,
    num_gpus: int,
    candidates: tuple[int, ...] | None = None,
    seed: int | None = None,
) -> dict[int, HybridResult]:
    """Sweep feasible ``gpus_per_trial`` values; returns {g: result}.

    Default candidates: powers of two up to one node's GPUs, plus the
    extremes (1 and ``num_gpus``), filtered to divisors of sensible
    slot counts.
    """
    if candidates is None:
        m = model.cluster.node.num_gpus
        cand = [1]
        g = 2
        while g <= min(num_gpus, m * 2):
            cand.append(g)
            g *= 2
        if num_gpus not in cand:
            cand.append(num_gpus)
        candidates = tuple(c for c in cand if c <= num_gpus)
    out: dict[int, HybridResult] = {}
    for g in candidates:
        result, _ = simulate_hybrid_search(trials, model, num_gpus, g,
                                           seed=seed)
        out[g] = result
    return out
