"""Experiment tracking: append-only JSONL run logs and search resume.

A 44-hour search must survive interruption.  The tracker writes one
JSON line per completed trial (config, metrics, status); on restart,
:func:`resume_search` filters the remaining configurations so finished
work is never repeated -- the minimal persistent layer a Tune-style
runner needs, kept deliberately file-based (no database) so logs can be
inspected and diffed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = ["TrialRecord", "RunTracker", "resume_search"]


def _canonical(config: dict) -> str:
    """Order-independent, hashable identity of a configuration."""
    return json.dumps(config, sort_keys=True, default=str)


@dataclass(frozen=True)
class TrialRecord:
    config: dict
    status: str
    metrics: dict

    def key(self) -> str:
        return _canonical(self.config)


class RunTracker:
    """Append-only JSONL log of trial outcomes for one search run."""

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: torn/corrupt lines skipped by the most recent ``records()`` scan
        self.torn_lines = 0

    def log_trial(self, config: dict, status: str, **metrics) -> TrialRecord:
        record = TrialRecord(config=dict(config), status=status,
                            metrics=dict(metrics))
        line = json.dumps(
            {"config": record.config, "status": status, "metrics": metrics},
            sort_keys=True, default=str,
        )
        # A 44-hour search must not lose a finished trial to a crash: the
        # record has to be durable, not just in the page cache, before we
        # report the trial as logged.
        with open(self.path, "a") as f:
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())
        return record

    def records(self) -> Iterator[TrialRecord]:
        self.torn_lines = 0
        if not self.path.exists():
            return
        with open(self.path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    # a crash mid-write leaves a torn final line; count it
                    # (exposed as ``torn_lines``) and keep reading
                    self.torn_lines += 1
                    continue
                yield TrialRecord(
                    config=obj["config"], status=obj["status"],
                    metrics=obj.get("metrics", {}),
                )

    def completed_configs(self) -> set[str]:
        """Canonical keys of trials that finished (any terminal state
        except 'error', which should be retried)."""
        done = set()
        for rec in self.records():
            if rec.status in ("terminated", "stopped"):
                done.add(rec.key())
        return done

    def best(self, metric: str, mode: str = "max") -> TrialRecord | None:
        scored = [
            r for r in self.records()
            if metric in r.metrics and r.status in ("terminated", "stopped")
        ]
        if not scored:
            return None
        key = (lambda r: r.metrics[metric])
        return max(scored, key=key) if mode == "max" else min(scored, key=key)

    def summary(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for rec in self.records():
            out[rec.status] = out.get(rec.status, 0) + 1
        return out


def resume_search(configs, tracker: RunTracker) -> list[dict]:
    """Return the configurations not yet completed according to the log.

    Order is preserved; errored trials reappear (so they get retried).
    """
    done = tracker.completed_configs()
    return [c for c in configs if _canonical(c) not in done]
