"""Input-pipeline profiling (the Section III-B1 experiment).

The paper's TensorBoard-profiler analysis showed data loading and
binarisation to be the pre-processing bottleneck, motivating *offline*
binarisation: transform once before training instead of at every epoch.
This module reproduces that analysis end to end:

* :func:`profile_online_vs_offline` measures, with real I/O on real
  (synthetic) volumes, the per-epoch input cost of (a) re-running
  decode + crop + standardise + binarise every epoch vs (b) reading the
  pre-binarised record file;
* :class:`BottleneckReport` ranks pipeline stages by time, the
  profiler-screenshot equivalent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..data.dataset import Dataset, PipelineStats
from ..data.nifti import read_nifti, write_nifti
from ..data.preprocess import preprocess_subject
from ..data.records import read_example_file, write_example_file
from ..data.synthetic_brats import Subject, SyntheticBraTS

__all__ = ["StageTiming", "BottleneckReport", "profile_online_vs_offline"]


@dataclass(frozen=True)
class StageTiming:
    stage: str
    seconds: float
    elements: int

    @property
    def per_element_ms(self) -> float:
        return 1e3 * self.seconds / max(1, self.elements)


@dataclass
class BottleneckReport:
    """Ranked stage timings plus the headline numbers of E5."""

    stages: list[StageTiming] = field(default_factory=list)
    online_epoch_s: float = 0.0
    offline_epoch_s: float = 0.0
    binarize_once_s: float = 0.0
    epochs_to_amortize: float = 0.0

    def bottleneck(self) -> StageTiming:
        if not self.stages:
            raise ValueError("no stages profiled")
        return max(self.stages, key=lambda s: s.seconds)

    def speedup_per_epoch(self) -> float:
        if self.offline_epoch_s <= 0:
            return float("inf")
        return self.online_epoch_s / self.offline_epoch_s

    def render(self) -> str:
        lines = ["pipeline stage profile (per-epoch):"]
        for s in sorted(self.stages, key=lambda s: -s.seconds):
            lines.append(
                f"  {s.stage:<24} {s.seconds*1e3:9.1f} ms total  "
                f"({s.per_element_ms:7.2f} ms/elem, n={s.elements})"
            )
        lines.append(
            f"online epoch input cost : {self.online_epoch_s*1e3:9.1f} ms"
        )
        lines.append(
            f"offline epoch input cost: {self.offline_epoch_s*1e3:9.1f} ms"
        )
        lines.append(
            f"one-off binarisation    : {self.binarize_once_s*1e3:9.1f} ms"
            f"  (amortised after {self.epochs_to_amortize:.1f} epochs)"
        )
        lines.append(f"per-epoch input speed-up: x{self.speedup_per_epoch():.1f}")
        return "\n".join(lines)


def _write_nifti_cohort(subjects: list[Subject], directory: Path) -> list[Path]:
    """Materialise the cohort as on-disk NIfTI files, like the MSD layout."""
    paths = []
    for s in subjects:
        p = directory / f"{s.subject_id}.nii"
        write_nifti(p, s.image, spacing=s.spacing, description=s.subject_id)
        lp = directory / f"{s.subject_id}_label.nii"
        write_nifti(lp, s.label, spacing=s.spacing)
        paths.append(p)
    return paths


def profile_online_vs_offline(
    num_subjects: int = 6,
    volume_shape: tuple[int, int, int] = (48, 48, 32),
    epochs: int = 3,
    workdir: str | Path | None = None,
    seed: int = 0,
) -> BottleneckReport:
    """Measure the two pipeline variants on real files.

    *Online*: every epoch reads the NIfTI files and re-runs the full
    transform (decode -> crop -> standardise -> binarise), tf.data-style.
    *Offline*: the transform runs once into a record file; epochs only
    read records.  Stage timings are collected through
    :class:`~repro.data.dataset.PipelineStats`.
    """
    import tempfile

    workdir = Path(workdir) if workdir else Path(
        tempfile.mkdtemp(prefix="distmis_profile_")
    )
    gen = SyntheticBraTS(num_subjects=num_subjects, volume_shape=volume_shape,
                         seed=seed)
    subjects = list(gen)
    nifti_paths = _write_nifti_cohort(subjects, workdir)
    label_paths = [workdir / f"{s.subject_id}_label.nii" for s in subjects]

    report = BottleneckReport()
    stats = PipelineStats()

    # --- online: full transform every epoch ---------------------------------
    def decode(paths):
        img_p, lab_p = paths
        img = read_nifti(img_p)
        lab = read_nifti(lab_p)
        return Subject(subject_id=img.description, image=img.data,
                       label=lab.data)

    t0 = time.perf_counter()
    for _ in range(epochs):
        ds = (
            Dataset.from_list(list(zip(nifti_paths, label_paths)))
            .with_stats(stats)
            .map(decode, stage="nifti_decode")
            .map(lambda s: preprocess_subject(s, divisor=4),
                 stage="transform")
            .map(lambda ex: (ex.image, ex.mask), stage="to_tensors")
        )
        for _ in ds:
            pass
    online_total = time.perf_counter() - t0
    report.online_epoch_s = online_total / epochs

    # --- offline: binarise once, epochs read records ---------------------------
    rec_path = workdir / "train.rec"
    t0 = time.perf_counter()
    write_example_file(
        rec_path,
        (
            {"image": ex.image, "mask": ex.mask}
            for ex in (preprocess_subject(s, divisor=4) for s in subjects)
        ),
    )
    report.binarize_once_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(epochs):
        ds = (
            Dataset.from_generator(lambda: read_example_file(rec_path))
            .with_stats(stats)
            .map(lambda ex: (ex["image"], ex["mask"]), stage="record_read")
        )
        for _ in ds:
            pass
    offline_total = time.perf_counter() - t0
    report.offline_epoch_s = offline_total / epochs

    saved_per_epoch = report.online_epoch_s - report.offline_epoch_s
    report.epochs_to_amortize = (
        report.binarize_once_s / saved_per_epoch
        if saved_per_epoch > 0
        else float("inf")
    )
    report.stages = [
        StageTiming(stage=k, seconds=stats.seconds[k], elements=stats.elements[k])
        for k in stats.seconds
    ]
    return report
