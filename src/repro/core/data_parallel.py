"""Data-parallel distribution of the hyper-parameter search (method 1).

The paper's first architecture (Fig 1, top): experiments run one after
another, each training on *all* available GPUs with batch sharding and
gradient all-reduce.  Section III-B2's three cases decide the machinery:

* ``n == 1`` -- plain sequential training;
* ``1 < n <= M`` -- Distributed TensorFlow ``MirroredStrategy`` inside
  one node;
* ``n > M`` -- Ray cluster + Ray SGD across nodes.

Two backends share this module:

* :func:`run_search_inprocess` really trains every configuration with
  ``num_gpus`` *virtual* replicas (exact semantics, laptop scale);
* :func:`simulate_search` prices the same search at paper scale on the
  discrete-event simulator with the calibrated cost model, emitting a
  timeline of per-trial spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.simulator import Simulator
from ..cluster.trace import Timeline
from ..perf.costs import StepCostModel, TrialConfig
from ..perf.speedup import _trial_jitters
from ..raysim.cluster import RayCluster
from .config import ExperimentSettings, HyperparameterSpace
from .pipeline import MISPipeline, TrialOutcome, train_trial

__all__ = ["DataParallelSearchResult", "run_search_inprocess",
           "simulate_search", "placement_case"]


def placement_case(num_gpus: int, gpus_per_node: int = 4) -> str:
    """The Section III-B2 trichotomy (string tag used in logs/traces)."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if num_gpus == 1:
        return "sequential"
    if num_gpus <= gpus_per_node:
        return "mirrored"
    return "ray_sgd"


@dataclass
class DataParallelSearchResult:
    num_gpus: int
    outcomes: list[TrialOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    timeline: Timeline | None = None

    def best(self, key: str = "val_dice") -> TrialOutcome:
        if not self.outcomes:
            raise ValueError("empty search result")
        return max(self.outcomes, key=lambda o: getattr(o, key))


def run_search_inprocess(
    space: HyperparameterSpace,
    settings: ExperimentSettings,
    num_gpus: int,
    pipeline: MISPipeline | None = None,
    telemetry=None,
) -> DataParallelSearchResult:
    """Execute the search for real: every config trains sequentially on
    ``num_gpus`` virtual replicas."""
    import time

    if telemetry is None:
        from ..telemetry import get_hub

        telemetry = get_hub()
    pipeline = pipeline or MISPipeline(settings, telemetry=telemetry)
    m_trials = telemetry.metrics.counter(
        "search_trials_total", "in-process trials trained", ("method",))
    result = DataParallelSearchResult(num_gpus=num_gpus)
    t0 = time.perf_counter()
    for idx, config in enumerate(space):
        with telemetry.tracer.span(f"trial_{idx:04d}", category="trial",
                                   method="data_parallel",
                                   **{k: str(v) for k, v in config.items()}):
            outcome = train_trial(config, settings, pipeline,
                                  num_replicas=num_gpus,
                                  telemetry=telemetry)
        m_trials.labels(method="data_parallel").inc()
        result.outcomes.append(outcome)
    result.elapsed_seconds = time.perf_counter() - t0
    return result


def simulate_search(
    trials: list[TrialConfig],
    model: StepCostModel,
    num_gpus: int,
    seed: int | None = None,
) -> tuple[float, Timeline]:
    """Paper-scale simulation: trials run back-to-back, each occupying
    the full ``num_gpus`` allocation; returns (elapsed seconds,
    timeline).  Matches
    :func:`repro.perf.speedup.data_parallel_search_time` exactly -- the
    event simulator adds the audited execution trace (allocation,
    placement case, per-trial spans)."""
    if num_gpus > model.cluster.total_gpus:
        raise ValueError(
            f"{num_gpus} GPUs requested, cluster has {model.cluster.total_gpus}"
        )
    ray_cluster = RayCluster(model.cluster)
    alloc = ray_cluster.allocate_gpus(num_gpus, strategy="pack")
    case = placement_case(num_gpus, model.cluster.node.num_gpus)

    jitters = _trial_jitters(model, len(trials), seed)
    sim = Simulator()
    timeline = Timeline()

    def run_all():
        for idx, (cfg, jit) in enumerate(zip(trials, jitters)):
            start = sim.now
            duration = model.trial_time(cfg, num_gpus, jitter=float(jit))
            yield sim.timeout(duration)
            for dev in alloc.devices:
                timeline.record(
                    name=f"trial_{idx:02d}", start=start, end=sim.now,
                    resource=str(dev), category="train",
                    case=case, loss=cfg.loss, lr=cfg.learning_rate,
                    base_filters=cfg.base_filters,
                )

    sim.process(run_all())
    elapsed = sim.run()
    ray_cluster.release(alloc)
    return elapsed, timeline
