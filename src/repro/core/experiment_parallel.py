"""Experiment-parallel distribution of the search (method 2, Ray Tune).

The paper's second architecture (Fig 1, bottom): ``Ray.Cluster`` is
launched over the available resources, then ``Ray.Tune`` places each
hyper-parameter configuration on its own GPU; runs are self-contained,
so no gradient synchronisation or data shuffling crosses trials -- the
property that buys the extra speed-up at scale (Section IV-C).

Backends:

* :func:`run_search_inprocess` -- the Tune-analogue trial runner really
  trains every configuration (1 virtual GPU each) at laptop scale;
* :func:`simulate_search` -- paper-scale: the discrete-event simulator
  executes Ray Tune's greedy FIFO placement over a GPU pool with the
  calibrated per-trial durations, producing the makespan and a
  timeline.  A test pins this to the analytic
  :func:`repro.raysim.scheduler.fifo_schedule` makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..cluster.failures import FailureModel, FailureRunResult, run_with_failures
from ..cluster.simulator import Resource, Simulator
from ..cluster.trace import Timeline
from ..fault_tolerance import FaultInjector, RetryPolicy
from ..perf.costs import StepCostModel, TrialConfig
from ..perf.speedup import _trial_jitters
from ..raysim.search import GridSearch
from ..raysim.tune import ExperimentAnalysis, TrialScheduler, tune_run
from .checkpoint import CheckpointManager
from .config import ExperimentSettings, HyperparameterSpace
from .pipeline import ArrayBackedPipeline, MISPipeline, TrialOutcome, \
    train_trial

__all__ = ["ExperimentParallelSearchResult", "run_search_inprocess",
           "simulate_search", "simulate_search_with_failures"]


@dataclass
class ExperimentParallelSearchResult:
    num_gpus: int
    outcomes: list[TrialOutcome] = field(default_factory=list)
    analysis: ExperimentAnalysis | None = None
    elapsed_seconds: float = 0.0
    timeline: Timeline | None = None

    def best(self, key: str = "val_dice") -> TrialOutcome:
        if not self.outcomes:
            raise ValueError("empty search result")
        return max(self.outcomes, key=lambda o: getattr(o, key))


def _process_trainable_factory(settings: ExperimentSettings,
                               handle, checkpoint_dir: str | None = None):
    """Build the per-worker trainable for the process executor.

    Runs *inside* each worker, once, before the first task: attaches the
    parent's shared-memory split arrays (zero-copy -- the worker maps
    the parent's pages instead of re-decoding the records) and serves
    every subsequent trial from an :class:`ArrayBackedPipeline` over
    those views.  Module-level so the reference pickles under any
    multiprocessing start method.
    """
    # The pipeline keeps `attached` referenced: dropping it would let
    # SharedMemory.__del__ unmap the segment under the live views.
    pipeline = ArrayBackedPipeline(settings, handle.attach())
    managers: dict[str, CheckpointManager] = {}

    def trainable(config: dict, reporter):
        manager = None
        if checkpoint_dir is not None:
            trial_id = getattr(reporter, "trial_id", "trial")
            manager = managers.get(trial_id)
            if manager is None:
                manager = CheckpointManager(Path(checkpoint_dir) / trial_id)
                managers[trial_id] = manager
        outcome = train_trial(config, settings, pipeline,
                              num_replicas=1, reporter=reporter,
                              checkpoint_manager=manager)
        return {"val_dice": outcome.val_dice,
                "test_dice": outcome.test_dice,
                "outcome": outcome}

    return trainable


def _run_search_process(
    space: HyperparameterSpace,
    settings: ExperimentSettings,
    pipeline: MISPipeline | None,
    scheduler: TrialScheduler | None,
    retry_policy: RetryPolicy | None,
    checkpoint_dir: str | Path | None,
    telemetry,
    max_workers: int | None,
    progress=None,
) -> ExperimentParallelSearchResult:
    """The process-pool backend of :func:`run_search_inprocess`."""
    import time

    from ..execpool import ProcessPoolTrialExecutor, SharedArrayStore

    pipeline = pipeline or MISPipeline(settings, telemetry=telemetry)
    t0 = time.perf_counter()
    # Binarise once, decode once, publish once: workers attach.
    store = SharedArrayStore(pipeline.split_arrays())
    telemetry.metrics.gauge(
        "execpool_shared_dataset_bytes",
        "shared-memory bytes holding the binarised splits (one copy, "
        "all workers)").set(store.nbytes)
    pool = ProcessPoolTrialExecutor(
        trainable_factory=_process_trainable_factory,
        factory_kwargs={
            "settings": settings,
            "handle": store.handle,
            "checkpoint_dir": (str(checkpoint_dir)
                               if checkpoint_dir is not None else None),
        },
        max_workers=max_workers,
        telemetry=telemetry,
    )
    try:
        analysis = tune_run(
            None,
            search_alg=GridSearch(space.axes),
            scheduler=scheduler,
            metric="val_dice",
            raise_on_error=retry_policy is None,
            retry_policy=retry_policy,
            telemetry=telemetry,
            executor=pool,
            progress=progress,
        )
    finally:
        pool.shutdown()
        store.close()
        store.unlink()
    # The worker ships each TrialOutcome inside the trial's final dict;
    # lift it out so trial.final matches the serial path's shape.
    outcomes: list[TrialOutcome] = []
    for trial in analysis.trials:
        if trial.final and "outcome" in trial.final:
            outcomes.append(trial.final.pop("outcome"))
    return ExperimentParallelSearchResult(
        num_gpus=pool.max_workers, outcomes=outcomes, analysis=analysis,
        elapsed_seconds=time.perf_counter() - t0,
    )


def run_search_inprocess(
    space: HyperparameterSpace,
    settings: ExperimentSettings,
    pipeline: MISPipeline | None = None,
    scheduler: TrialScheduler | None = None,
    retry_policy: RetryPolicy | None = None,
    checkpoint_dir: str | Path | None = None,
    fault_injector: FaultInjector | None = None,
    telemetry=None,
    executor: str = "serial",
    max_workers: int | None = None,
    progress=None,
) -> ExperimentParallelSearchResult:
    """Run the search through the Tune-analogue runner: every trial is a
    single-replica training (concurrent placement affects wall-clock,
    not results, so executing them serially *or* on a process pool is
    result-identical).

    ``executor="process"`` distributes the trials over ``max_workers``
    persistent worker processes (true multi-core parallelism, claim C1
    executed rather than simulated): the parent binarises and decodes
    the splits once, publishes them into shared memory, and each worker
    attaches zero-copy.  Per-trial metrics are bit-identical to the
    serial path.  ``fault_injector`` (an in-parent stateful wrapper) is
    only supported serially; ``retry_policy`` and ``checkpoint_dir``
    work with both backends.

    Fault tolerance: ``checkpoint_dir`` gives every trial its own
    :class:`CheckpointManager` under ``checkpoint_dir/<trial_id>``
    (managers persist across retries of the same trial), and
    ``retry_policy`` re-runs crashed trials -- resuming from the last
    per-epoch checkpoint when both are set.  ``fault_injector`` wraps
    the trainable for end-to-end crash testing; with retries or an
    injector configured, crashes are recorded on the trial instead of
    raised.
    """
    import time

    if telemetry is None:
        from ..telemetry import get_hub

        telemetry = get_hub()
    if executor == "process":
        if fault_injector is not None:
            raise ValueError(
                "fault_injector is in-parent state and is not supported "
                "with executor='process'; use the serial executor"
            )
        return _run_search_process(
            space, settings, pipeline, scheduler, retry_policy,
            checkpoint_dir, telemetry, max_workers, progress=progress,
        )
    if executor != "serial":
        raise ValueError(
            f"executor must be 'serial' or 'process', got {executor!r}"
        )
    pipeline = pipeline or MISPipeline(settings, telemetry=telemetry)
    outcomes: list[TrialOutcome] = []
    managers: dict[str, CheckpointManager] = {}

    def trainable(config: dict, reporter):
        manager = None
        if checkpoint_dir is not None:
            trial_id = getattr(reporter, "trial_id", "trial")
            manager = managers.get(trial_id)
            if manager is None:
                manager = CheckpointManager(Path(checkpoint_dir) / trial_id)
                managers[trial_id] = manager
        outcome = train_trial(config, settings, pipeline,
                              num_replicas=1, reporter=reporter,
                              checkpoint_manager=manager,
                              telemetry=telemetry)
        outcomes.append(outcome)
        return {"val_dice": outcome.val_dice, "test_dice": outcome.test_dice}

    runnable = trainable if fault_injector is None \
        else fault_injector.wrap(trainable)
    t0 = time.perf_counter()
    analysis = tune_run(
        runnable,
        search_alg=GridSearch(space.axes),
        scheduler=scheduler,
        metric="val_dice",
        raise_on_error=retry_policy is None and fault_injector is None,
        retry_policy=retry_policy,
        telemetry=telemetry,
        progress=progress,
    )
    result = ExperimentParallelSearchResult(
        num_gpus=1, outcomes=outcomes, analysis=analysis,
        elapsed_seconds=time.perf_counter() - t0,
    )
    return result


def simulate_search(
    trials: list[TrialConfig],
    model: StepCostModel,
    num_gpus: int,
    seed: int | None = None,
    telemetry=None,
) -> tuple[float, Timeline]:
    """Paper-scale simulation of Ray Tune's placement.

    A :class:`Resource` pool of ``num_gpus`` GPUs; trial processes are
    submitted FIFO and each acquires one GPU, holds it for
    ``tune_overhead + duration`` and releases it; the elapsed time is
    the makespan plus the Ray cluster spin-up over the hosting nodes.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if num_gpus > model.cluster.total_gpus:
        raise ValueError(
            f"{num_gpus} GPUs requested, cluster has {model.cluster.total_gpus}"
        )
    if telemetry is None:
        from ..telemetry import get_hub

        telemetry = get_hub()
    m_queue = telemetry.metrics.histogram(
        "sim_queue_depth", "trials waiting for a GPU at each placement",
        ("method",), buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128),
    ).labels(method="experiment_parallel")
    jitters = _trial_jitters(model, len(trials), seed)
    durations = [
        model.trial_time(cfg, 1, jitter=float(j))
        for cfg, j in zip(trials, jitters)
    ]
    overhead = model.params.tune_trial_overhead_s

    sim = Simulator()
    pool = Resource(sim, capacity=num_gpus, name="gpu_pool")
    timeline = Timeline()
    # Track which physical GPU each acquisition maps to, for the trace.
    free_slots = list(range(num_gpus))
    waiting = [len(durations)]

    def trial_proc(idx: int, duration: float):
        yield pool.request()
        waiting[0] -= 1
        m_queue.observe(waiting[0])
        slot = free_slots.pop()
        start = sim.now
        yield sim.timeout(overhead + duration)
        cfg = trials[idx]
        timeline.record(
            name=f"trial_{idx:02d}", start=start, end=sim.now,
            resource=str(model.cluster.device(slot)), category="train",
            loss=cfg.loss, lr=cfg.learning_rate,
            base_filters=cfg.base_filters,
        )
        free_slots.append(slot)
        pool.release()

    # FIFO submission order == grid enumeration order (Ray Tune).
    for idx, d in enumerate(durations):
        sim.process(trial_proc(idx, d))
    makespan = sim.run()

    nodes = model.cluster.nodes_for(num_gpus)
    cluster_startup = (
        model.params.startup_per_node_s * nodes if num_gpus > 1 else 0.0
    )
    return makespan + cluster_startup, timeline


def simulate_search_with_failures(
    trials: list[TrialConfig],
    model: StepCostModel,
    num_gpus: int,
    failure_model: FailureModel,
    retry_policy: RetryPolicy | None = None,
    seed: int | None = None,
    telemetry=None,
) -> tuple[float, FailureRunResult]:
    """Paper-scale experiment-parallel placement under failures.

    Same calibrated per-trial durations and Ray Tune FIFO placement as
    :func:`simulate_search`, but executed through
    :func:`repro.cluster.failures.run_with_failures` with per-epoch
    checkpoint granularity (each trial's ``epochs``) and the shared
    :class:`RetryPolicy` semantics.  Returns ``(elapsed, result)`` where
    ``elapsed`` includes the cluster spin-up and ``result`` carries the
    failure count, wasted seconds, per-trial retry records and the
    timeline (failures included) for the Chrome trace.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if num_gpus > model.cluster.total_gpus:
        raise ValueError(
            f"{num_gpus} GPUs requested, cluster has {model.cluster.total_gpus}"
        )
    if telemetry is None:
        from ..telemetry import get_hub

        telemetry = get_hub()
    jitters = _trial_jitters(model, len(trials), seed)
    durations = [
        model.trial_time(cfg, 1, jitter=float(j))
        for cfg, j in zip(trials, jitters)
    ]
    result = run_with_failures(
        durations, num_gpus, failure_model,
        seed=0 if seed is None else seed,
        per_trial_overhead=model.params.tune_trial_overhead_s,
        num_epochs=[cfg.epochs for cfg in trials],
        retry_policy=retry_policy,
    )
    telemetry.metrics.counter(
        "sim_failures_total", "injected simulator failures",
        ("method",)).labels(method="experiment_parallel").inc(
            result.num_failures)
    telemetry.metrics.counter(
        "sim_wasted_seconds_total", "simulated compute lost to failures",
        ("method",)).labels(method="experiment_parallel").inc(
            result.wasted_seconds)
    nodes = model.cluster.nodes_for(num_gpus)
    cluster_startup = (
        model.params.startup_per_node_s * nodes if num_gpus > 1 else 0.0
    )
    return result.makespan + cluster_startup, result
