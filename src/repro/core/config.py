"""Experiment configuration: hyper-parameter spaces and run settings.

The paper defines its search space as "the cross-product of the
different values for each option in the configuration" (Section
III-B2).  :class:`HyperparameterSpace` captures that contract and
produces the concrete per-trial dictionaries consumed by both
distribution methods; :class:`ExperimentSettings` holds everything
else a run needs (dataset scale, epochs, seeds, cluster shape).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..nn.losses import get_loss
from ..nn.optimizers import Adam, Momentum, SGD
from ..nn.schedules import ConstantLR, CyclicLR, linear_scaling_rule
from ..nn.unet3d import UNet3D

__all__ = ["HyperparameterSpace", "ExperimentSettings", "build_model",
           "build_loss", "build_optimizer", "DEFAULT_SPACE"]


class HyperparameterSpace:
    """A ``{name: [values...]}`` grid; iterating yields config dicts."""

    def __init__(self, axes: dict[str, list]):
        if not axes:
            raise ValueError("hyper-parameter space is empty")
        for name, values in axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"axis {name!r} must be a non-empty list")
        self.axes = {k: list(v) for k, v in axes.items()}

    def __len__(self) -> int:
        n = 1
        for v in self.axes.values():
            n *= len(v)
        return n

    def __iter__(self):
        keys = list(self.axes)
        for combo in itertools.product(*(self.axes[k] for k in keys)):
            yield dict(zip(keys, combo))

    def configurations(self) -> list[dict]:
        return list(self)


# A small default space for the in-process experiments (the full-scale
# benchmark grid lives in repro.perf.speedup.paper_search_grid).
DEFAULT_SPACE = HyperparameterSpace(
    {
        "learning_rate": [1e-2, 1e-3],
        "loss": ["dice", "quadratic_dice"],
    }
)


@dataclass
class ExperimentSettings:
    """Scale and reproducibility knobs for an in-process run.

    Defaults are laptop-sized; the paper-scale values (484 subjects,
    240x240x152, 250 epochs, batch 2/replica) are what the *simulated*
    backend prices instead of executing.
    """

    num_subjects: int = 12
    volume_shape: tuple[int, int, int] = (24, 24, 16)
    epochs: int = 8
    batch_per_replica: int = 2
    base_filters: int = 4
    depth: int = 3
    seed: int = 0
    data_seed: int = 100
    use_batchnorm: bool = True
    sync_batchnorm: bool = False
    scale_learning_rate: bool = True   # the paper's LR x #GPUs rule
    cyclic_lr: bool = False            # CLR variant (reference [38])
    augment: bool = False              # online flips + noise per epoch

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.num_subjects < 3:
            raise ValueError("need >= 3 subjects for a 70/15/15 split")
        div = 2 ** (self.depth - 1)
        if any(s % div for s in self.volume_shape):
            raise ValueError(
                f"volume {self.volume_shape} not divisible by {div} "
                f"(depth {self.depth})"
            )

    def model_rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)


def build_model(config: dict, settings: ExperimentSettings) -> UNet3D:
    """Instantiate the 3D U-Net a trial's config describes.

    Seeding is deterministic in ``settings.seed`` only, so two trials
    with different hyper-parameters still start from comparable weights
    and -- crucially for claim C2 -- the same trial rebuilt on another
    'device' is bit-identical.
    """
    return UNet3D(
        in_channels=4,
        out_channels=1,
        base_filters=int(config.get("base_filters", settings.base_filters)),
        depth=int(config.get("depth", settings.depth)),
        use_batchnorm=settings.use_batchnorm,
        rng=settings.model_rng(),
    )


def build_loss(config: dict):
    return get_loss(config.get("loss", "dice"))


def build_optimizer(config: dict, settings: ExperimentSettings, model,
                    num_replicas: int = 1, steps_per_epoch: int | None = None):
    """Optimizer per the paper: Adam at ``lr x #GPUs`` (Section IV-B),
    optionally under a cyclic schedule (reference [38])."""
    base_lr = float(config.get("learning_rate", 1e-4))
    lr = (
        linear_scaling_rule(base_lr, num_replicas)
        if settings.scale_learning_rate
        else base_lr
    )
    if settings.cyclic_lr:
        step_size = max(1, (steps_per_epoch or 10) * 2)
        schedule = CyclicLR(base_lr=lr / 4, max_lr=lr, step_size=step_size)
    else:
        schedule = ConstantLR(lr)
    name = config.get("optimizer", "adam")
    if name == "adam":
        return Adam(model, lr=schedule)
    if name == "sgd":
        return SGD(model, lr=schedule)
    if name == "momentum":
        return Momentum(model, lr=schedule)
    raise ValueError(f"unknown optimizer {name!r}")
