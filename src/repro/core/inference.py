"""Inference strategies: full-volume vs sliding-window sub-patches.

The paper argues (Sections I, II-A) for end-to-end *full-volume* input:
sub-patching fits memory but loses spatial context and is slower at
inference (many overlapping windows per subject).  This module makes
both strategies first-class so experiment E11 can compare them:

* :func:`full_volume_inference` -- one forward pass per subject;
* :func:`sliding_window_inference` -- tile, predict per patch, stitch
  with overlap averaging;
* :func:`train_on_patches` -- the sub-patch *training* baseline
  (foreground-biased random patches per step).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..data.patches import (
    PatchSpec,
    extract_patches,
    sample_random_patches,
    stitch_patches,
)
from ..nn.losses import Loss

from ..nn.module import Module
from ..nn.optimizers import Optimizer

__all__ = [
    "InferenceResult",
    "full_volume_inference",
    "sliding_window_inference",
    "sliding_window_spec",
    "chunk_bounds",
    "stitch_chunks",
    "train_on_patches",
]


def sliding_window_spec(
    patch_shape: tuple[int, int, int], overlap: float
) -> PatchSpec:
    """The patch/stride geometry sliding-window inference uses.

    ``overlap`` in [0, 1) sets the stride to ``patch * (1 - overlap)``.
    Factored out so scatter--gather serving (:mod:`repro.serve`)
    decomposes a request over *exactly* the grid offline inference
    walks -- bit-identity depends on identical geometry.
    """
    if not 0.0 <= overlap < 1.0:
        raise ValueError("overlap must be in [0, 1)")
    stride = tuple(
        max(1, int(round(p * (1.0 - overlap)))) for p in patch_shape)
    return PatchSpec(patch_shape=patch_shape, stride=stride)


def chunk_bounds(n_patches: int, batch_size: int) -> list[tuple[int, int]]:
    """The ``[start, end)`` patch ranges of each model invocation.

    One chunk is one ``model.predict`` call of up to ``batch_size``
    patches -- the unit scatter--gather serving schedules across
    replicas.  Served chunks must match these bounds exactly: a
    batched matmul is not bitwise-identical to a differently-grouped
    one on this BLAS, so regrouping patches would break the served ==
    offline identity.
    """
    if n_patches < 1:
        raise ValueError("n_patches must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return [(start, min(start + batch_size, n_patches))
            for start in range(0, n_patches, batch_size)]


def stitch_chunks(
    chunk_preds: dict[int, np.ndarray],
    offsets: list[tuple[int, int, int]],
    volume_shape: tuple[int, int, int],
) -> np.ndarray:
    """Stitch per-chunk patch predictions back into one volume.

    ``chunk_preds`` maps chunk index -> that chunk's ``(n, C, *patch)``
    predictions, however (and in whatever order) they arrived.  The
    chunks are concatenated in *canonical index order* before the one
    overlap-averaging pass, so the result is independent of arrival
    order **by construction** -- float accumulation happens in exactly
    the order offline :func:`sliding_window_inference` uses, making
    driver-side stitching of scattered chunks bit-identical to the
    offline path (pinned by the stitch-order-permutation test).
    """
    if set(chunk_preds) != set(range(len(chunk_preds))):
        raise ValueError(
            f"chunk indices must be 0..{len(chunk_preds) - 1}, got "
            f"{sorted(chunk_preds)}")
    ordered = np.concatenate(
        [chunk_preds[i] for i in range(len(chunk_preds))], axis=0)
    return stitch_patches(ordered, offsets, volume_shape)


@dataclass
class InferenceResult:
    """Prediction plus accounting for the strategy comparison.

    Accounting semantics (pinned by the E11 regression tests):

    * ``forward_passes`` counts **samples pushed through the network**:
      every sample of every model invocation counts once, so batching
      patches never changes the count.  Full-volume inference on N
      subjects is N passes; sliding-window inference is the total
      number of patches, whatever ``batch_size`` groups them into.
      (An earlier revision counted sliding-window passes per *batch*,
      silently deflating sub-patch compute by ``batch_size`` relative
      to ``voxels_computed`` and to the full-volume strategy.)
    * ``model_invocations`` counts calls into ``model.predict`` -- the
      dispatch-overhead unit micro-batched serving amortises.
    * ``voxels_computed`` is consistent with ``forward_passes``: the
      voxels of every sample actually forwarded.
    """

    prediction: np.ndarray        # (N, C, D, H, W)
    seconds: float
    forward_passes: int           # samples forwarded (batch-size invariant)
    voxels_computed: int          # total voxels pushed through the net
    model_invocations: int = 0    # model.predict calls (0 = unknown/legacy)

    def overcompute_factor(self) -> float:
        """Computed voxels / output voxels (1.0 = no redundancy)."""
        out_voxels = int(np.prod(self.prediction.shape))
        return self.voxels_computed / out_voxels


def full_volume_inference(model: Module, images: np.ndarray) -> InferenceResult:
    """One forward pass per subject at native resolution."""
    t0 = time.perf_counter()
    preds = []
    for i in range(images.shape[0]):
        preds.append(model.predict(images[i : i + 1])[0])
    pred = np.stack(preds)
    return InferenceResult(
        prediction=pred,
        seconds=time.perf_counter() - t0,
        forward_passes=images.shape[0],
        voxels_computed=int(np.prod(pred.shape)),
        model_invocations=images.shape[0],
    )


def sliding_window_inference(
    model: Module,
    images: np.ndarray,
    patch_shape: tuple[int, int, int],
    overlap: float = 0.5,
    batch_size: int = 4,
) -> InferenceResult:
    """Tile each subject, run the model per patch batch, stitch back.

    ``overlap`` in [0, 1) sets the stride to ``patch * (1 - overlap)``,
    the usual sliding-window configuration.  Geometry and chunking come
    from :func:`sliding_window_spec` / :func:`chunk_bounds` -- the same
    plan scatter--gather serving distributes across replicas, so the
    two paths stay bit-identical by construction.
    """
    spec = sliding_window_spec(patch_shape, overlap)

    t0 = time.perf_counter()
    out = []
    passes = 0
    invocations = 0
    voxels = 0
    for i in range(images.shape[0]):
        patches, offsets = extract_patches(images[i], spec)
        preds = {}
        for ci, (start, end) in enumerate(
                chunk_bounds(len(patches), batch_size)):
            chunk = patches[start:end]
            pred = model.predict(chunk)
            preds[ci] = pred
            # per-sample accounting: a batch of k patches is k forward
            # passes of work (matches voxels_computed and the full-volume
            # strategy), however the invocation groups them
            passes += int(chunk.shape[0])
            invocations += 1
            voxels += int(np.prod(pred.shape))
        out.append(stitch_chunks(preds, offsets, images.shape[2:]))
    prediction = np.stack(out)
    return InferenceResult(
        prediction=prediction,
        seconds=time.perf_counter() - t0,
        forward_passes=passes,
        voxels_computed=voxels,
        model_invocations=invocations,
    )


def train_on_patches(
    model: Module,
    loss: Loss,
    optimizer: Optimizer,
    images: np.ndarray,
    masks: np.ndarray,
    patch_shape: tuple[int, int, int],
    steps: int,
    patches_per_step: int = 2,
    rng: np.random.Generator | None = None,
    foreground_fraction: float = 0.5,
) -> list[float]:
    """The sub-patch training baseline: each step draws random
    (foreground-biased) patches from random subjects.  Returns the
    per-step loss trajectory."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    rng = rng if rng is not None else np.random.default_rng()
    losses = []
    n = images.shape[0]
    for _ in range(steps):
        subject = int(rng.integers(n))
        px, pm = sample_random_patches(
            images[subject], masks[subject], patch_shape,
            patches_per_step, rng, foreground_fraction,
        )
        model.zero_grad()
        pred = model(px)
        value, dpred = loss.forward(pred, pm)
        model.backward(dpred)
        optimizer.step()
        losses.append(float(value))
    return losses
