"""Checkpointing: persist and restore model + optimizer + trial state.

Long cluster runs need restartability (a 44-hour search on a shared
machine *will* be preempted).  Checkpoints are ``.npz`` archives holding
the model's state dict, the optimizer's slot variables and arbitrary
JSON-serialisable metadata (epoch counter, best dice, RNG-free -- the
training loop re-seeds per epoch, so resume is exact).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..nn.module import Module
from ..nn.optimizers import Optimizer

__all__ = ["save_checkpoint", "load_checkpoint", "CheckpointManager"]

_META_KEY = "__meta_json__"
_OPT_PREFIX = "__opt__/"


def _flatten_opt_state(state: dict, prefix: str = "") -> dict[str, np.ndarray]:
    """Flatten the nested optimizer state into array entries."""
    out: dict[str, np.ndarray] = {}
    for key, value in state.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten_opt_state(value, prefix=f"{name}/"))
        else:
            out[name] = np.asarray(value)
    return out


def _unflatten_opt_state(entries: dict[str, np.ndarray]) -> dict:
    root: dict = {}
    for name, value in entries.items():
        parts = name.split("/")
        node = root
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        leaf = parts[-1]
        if value.ndim == 0:
            node[leaf] = value.item()
        else:
            node[leaf] = value
    # integer dict keys (slot indices) were stringified by the flattener
    def fix(node):
        if not isinstance(node, dict):
            return node
        out = {}
        for k, v in node.items():
            key = int(k) if k.lstrip("-").isdigit() else k
            out[key] = fix(v)
        return out
    return fix(root)


def save_checkpoint(
    path,
    model: Module,
    optimizer: Optimizer | None = None,
    **metadata,
) -> Path:
    """Write a single-file checkpoint; returns the (normalised) path."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    payload: dict[str, np.ndarray] = {
        f"model/{name}": value for name, value in model.state_dict().items()
    }
    if optimizer is not None:
        payload.update(
            {
                _OPT_PREFIX + k: v
                for k, v in _flatten_opt_state(optimizer.state_dict()).items()
            }
        )
    payload[_META_KEY] = np.frombuffer(
        json.dumps(metadata).encode(), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)
    return path


def load_checkpoint(
    path,
    model: Module,
    optimizer: Optimizer | None = None,
) -> dict:
    """Restore ``model`` (and ``optimizer``) in place; returns metadata."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        model_state = {
            name[len("model/"):]: archive[name]
            for name in archive.files
            if name.startswith("model/")
        }
        model.load_state_dict(model_state)
        if optimizer is not None:
            opt_entries = {
                name[len(_OPT_PREFIX):]: archive[name]
                for name in archive.files
                if name.startswith(_OPT_PREFIX)
            }
            if not opt_entries:
                raise KeyError(f"{path} holds no optimizer state")
            optimizer.load_state_dict(_unflatten_opt_state(opt_entries))
        meta_raw = archive[_META_KEY].tobytes().decode()
    return json.loads(meta_raw)


class CheckpointManager:
    """Rolling checkpoints with best-metric tracking for one trial.

    >>> mgr = CheckpointManager(dir, keep=2)
    >>> mgr.save(model, opt, epoch=3, val_dice=0.91)
    >>> mgr.best_path  # checkpoint of the best val_dice so far
    """

    def __init__(self, directory, keep: int = 3, metric: str = "val_dice",
                 mode: str = "max"):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.metric = metric
        self.mode = mode
        self._saved: list[Path] = []
        self.best_path: Path | None = None
        self._best_value: float | None = None

    def save(self, model: Module, optimizer: Optimizer | None = None,
             **metadata) -> Path:
        epoch = metadata.get("epoch", len(self._saved))
        path = self.directory / f"ckpt_epoch{epoch:04d}.npz"
        save_checkpoint(path, model, optimizer, **metadata)
        # A re-save of the same epoch (e.g. a retried epoch after a
        # crash-resume) overwrites in place: re-registering the path
        # would let the rolling eviction unlink the live checkpoint.
        if path in self._saved:
            self._saved.remove(path)
        self._saved.append(path)

        value = metadata.get(self.metric)
        if value is not None:
            better = (
                self._best_value is None
                or (self.mode == "max" and value > self._best_value)
                or (self.mode == "min" and value < self._best_value)
            )
            if better:
                self._best_value = float(value)
                best = self.directory / "ckpt_best.npz"
                save_checkpoint(best, model, optimizer, **metadata)
                self.best_path = best

        while len(self._saved) > self.keep:
            old = self._saved.pop(0)
            old.unlink(missing_ok=True)
        return path

    def latest_path(self) -> Path | None:
        return self._saved[-1] if self._saved else None
