"""Result containers and report formatting for full comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..perf.speedup import format_hms

__all__ = ["MethodSeries", "ComparisonReport"]


@dataclass
class MethodSeries:
    """Elapsed-time measurements of one method over GPU counts x runs."""

    method: str
    gpu_counts: list[int]
    # runs[i][j]: elapsed seconds at gpu_counts[i], repetition j
    runs: list[list[float]] = field(default_factory=list)

    def mean(self) -> list[float]:
        return [float(np.mean(r)) for r in self.runs]

    def minimum(self) -> list[float]:
        return [float(np.min(r)) for r in self.runs]

    def maximum(self) -> list[float]:
        return [float(np.max(r)) for r in self.runs]

    def speedups(self) -> list[float]:
        means = self.mean()
        base = means[0]
        return [base / m for m in means]

    def row(self, i: int) -> dict:
        means = self.mean()
        return {
            "method": self.method,
            "num_gpus": self.gpu_counts[i],
            "mean_s": means[i],
            "min_s": self.minimum()[i],
            "max_s": self.maximum()[i],
            "speedup": means[0] / means[i],
        }


class ComparisonReport:
    """Joint Table I / Fig 4 style report over both methods."""

    def __init__(self, data_parallel: MethodSeries,
                 experiment_parallel: MethodSeries):
        if data_parallel.gpu_counts != experiment_parallel.gpu_counts:
            raise ValueError("methods measured at different GPU counts")
        self.dp = data_parallel
        self.ep = experiment_parallel

    @property
    def gpu_counts(self) -> list[int]:
        return self.dp.gpu_counts

    def table_rows(self) -> list[dict]:
        rows = []
        dp_means, ep_means = self.dp.mean(), self.ep.mean()
        dp_sp, ep_sp = self.dp.speedups(), self.ep.speedups()
        for i, n in enumerate(self.gpu_counts):
            rows.append(
                {
                    "num_gpus": n,
                    "dp_elapsed": dp_means[i],
                    "dp_speedup": dp_sp[i],
                    "ep_elapsed": ep_means[i],
                    "ep_speedup": ep_sp[i],
                }
            )
        return rows

    def render_table(self) -> str:
        lines = [
            "        |  Data Parallel Method   | Experiment Parallel Method",
            "# GPUs  | Elapsed time | Speedup  | Elapsed time | Speedup",
            "-" * 64,
        ]
        for r in self.table_rows():
            lines.append(
                f"{r['num_gpus']:>6}  | {format_hms(r['dp_elapsed']):>12} | "
                f"{r['dp_speedup']:>7.2f}  | {format_hms(r['ep_elapsed']):>12} | "
                f"{r['ep_speedup']:>7.2f}"
            )
        return "\n".join(lines)

    def render_figure_series(self) -> str:
        """Fig 4 as text: per-GPU-count mean elapsed (with min/max) and
        mean speed-up for both methods."""
        lines = ["Fig 4a: mean elapsed hours per #GPUs (min..max over runs)"]
        for series in (self.dp, self.ep):
            means = series.mean()
            mins, maxs = series.minimum(), series.maximum()
            pts = ", ".join(
                f"{n}: {m/3600:.2f}h ({lo/3600:.2f}..{hi/3600:.2f})"
                for n, m, lo, hi in zip(series.gpu_counts, means, mins, maxs)
            )
            lines.append(f"  {series.method}: {pts}")
        lines.append("Fig 4b: mean speed-up per #GPUs")
        for series in (self.dp, self.ep):
            pts = ", ".join(
                f"{n}: x{s:.2f}"
                for n, s in zip(series.gpu_counts, series.speedups())
            )
            lines.append(f"  {series.method}: {pts}")
        return "\n".join(lines)

    def crossover_gap(self) -> list[tuple[int, float]]:
        """(n, ep_speedup - dp_speedup) -- the widening-gap evidence."""
        return [
            (r["num_gpus"], r["ep_speedup"] - r["dp_speedup"])
            for r in self.table_rows()
        ]
