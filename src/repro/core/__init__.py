"""``repro.core`` -- the paper's contribution: distributed MIS training.

Configuration spaces (:mod:`~repro.core.config`), the Fig 1 pipeline
(:mod:`~repro.core.pipeline`), the two distribution methods
(:mod:`~repro.core.data_parallel`,
:mod:`~repro.core.experiment_parallel`), the pipeline profiler
(:mod:`~repro.core.profiling`), result reports
(:mod:`~repro.core.results`) and the :class:`DistMISRunner` facade
(:mod:`~repro.core.runner`).
"""

from . import data_parallel, experiment_parallel
from .checkpoint import CheckpointManager, load_checkpoint, save_checkpoint
from .hybrid import HybridResult, best_gpus_per_trial, simulate_hybrid_search
from .report import build_report
from .tracking import RunTracker, TrialRecord, resume_search
from .inference import (
    InferenceResult,
    chunk_bounds,
    full_volume_inference,
    sliding_window_inference,
    sliding_window_spec,
    stitch_chunks,
    train_on_patches,
)
from .config import (
    DEFAULT_SPACE,
    ExperimentSettings,
    HyperparameterSpace,
    build_loss,
    build_model,
    build_optimizer,
)
from .data_parallel import DataParallelSearchResult, placement_case
from .experiment_parallel import ExperimentParallelSearchResult
from .pipeline import EpochRecord, MISPipeline, TrialOutcome, train_trial
from .profiling import BottleneckReport, StageTiming, profile_online_vs_offline
from .results import ComparisonReport, MethodSeries
from .runner import DistMISRunner, SimulatedRun

__all__ = [
    "HyperparameterSpace",
    "ExperimentSettings",
    "DEFAULT_SPACE",
    "build_model",
    "build_loss",
    "build_optimizer",
    "MISPipeline",
    "EpochRecord",
    "TrialOutcome",
    "train_trial",
    "DataParallelSearchResult",
    "ExperimentParallelSearchResult",
    "placement_case",
    "data_parallel",
    "experiment_parallel",
    "BottleneckReport",
    "StageTiming",
    "profile_online_vs_offline",
    "MethodSeries",
    "ComparisonReport",
    "DistMISRunner",
    "SimulatedRun",
    "CheckpointManager",
    "save_checkpoint",
    "load_checkpoint",
    "InferenceResult",
    "chunk_bounds",
    "full_volume_inference",
    "sliding_window_inference",
    "sliding_window_spec",
    "stitch_chunks",
    "train_on_patches",
    "RunTracker",
    "TrialRecord",
    "resume_search",
    "build_report",
    "HybridResult",
    "simulate_hybrid_search",
    "best_gpus_per_trial",
]
