"""Model/pipeline parallelism cost extension (the paper's future work).

Section V-C motivates model parallelism: 16 GB V100s cap the batch at
2 full volumes, so splitting a *single* model across devices would
unlock larger inputs/batches at the price of inter-stage communication
and pipeline bubbles.  This module prices that design so the ablation
benches (E10) can compare it against data and experiment parallelism:

* the U-Net is cut into ``num_stages`` contiguous stages of roughly
  equal FLOPs; stage boundaries ship activation tensors
  (GPipe-style pipelining with ``num_microbatches`` micro-batches);
* per-step time = per-stage compute x (microbatches + stages - 1) /
  microbatches  + activation transfers;
* per-stage memory ~ footprint / stages + in-flight microbatch
  activations, which is what allows the bigger batch.
"""

from __future__ import annotations


from dataclasses import dataclass

from .network import LinkSpec
from .resources import GPUSpec, unet3d_activation_bytes

__all__ = ["PipelineParallelPlan", "plan_pipeline_parallel"]


@dataclass(frozen=True)
class PipelineParallelPlan:
    """A priced pipeline-parallel execution of one training step."""

    num_stages: int
    num_microbatches: int
    batch_per_step: int
    step_time_s: float
    bubble_fraction: float
    per_stage_memory_bytes: float
    max_feasible_batch: int

    def throughput_samples_per_s(self) -> float:
        return self.batch_per_step / self.step_time_s


def plan_pipeline_parallel(
    total_step_flops: float,
    spatial: tuple[int, int, int],
    gpu: GPUSpec,
    link: LinkSpec,
    num_stages: int,
    batch_per_step: int,
    num_microbatches: int | None = None,
    gpu_efficiency: float = 0.6,
    base_filters: int = 8,
    model_params: int = 406_793,
) -> PipelineParallelPlan:
    """Price one training step of a ``num_stages``-way pipeline split.

    ``total_step_flops`` is fwd+bwd FLOPs for the whole batch on one
    device.  Defaults to one micro-batch per sample (GPipe's natural
    choice for full-volume 3D inputs where a sample is already huge).
    """
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if batch_per_step < 1:
        raise ValueError("batch_per_step must be >= 1")
    m = num_microbatches if num_microbatches is not None else batch_per_step
    if m < 1 or m > batch_per_step * 16:
        raise ValueError("num_microbatches out of range")

    peak = gpu.fp32_tflops * 1e12 * gpu_efficiency
    per_stage_flops = total_step_flops / num_stages
    stage_time = per_stage_flops / peak  # whole batch through one stage

    # GPipe bubble: (m + S - 1) micro-slots instead of m.
    bubble = (num_stages - 1) / (m + num_stages - 1)
    compute_time = stage_time * (m + num_stages - 1) / m

    # Boundary activations: a full-resolution feature map per sample
    # per boundary, forward + backward.
    voxels = spatial[0] * spatial[1] * spatial[2]
    boundary_bytes = base_filters * voxels * 4 * batch_per_step
    comm_time = (
        2 * (num_stages - 1)
        * (link.latency_s + boundary_bytes / link.bandwidth_bytes_per_s)
    )

    # Memory: weights split across stages, activations split across
    # stages but multiplied by in-flight microbatches (capped at S).
    act = unet3d_activation_bytes(spatial, base_filters=base_filters,
                                  batch_per_replica=batch_per_step)
    inflight = min(m, num_stages)
    per_stage_mem = (
        model_params * 4 * 3 / num_stages
        + act / num_stages * inflight / max(1, m)
        * max(1, m / batch_per_step)
    )
    # Largest batch that keeps per-stage memory under the device budget.
    budget = gpu.memory_bytes * 0.92
    per_sample_act = act / batch_per_step / num_stages
    weights_share = model_params * 4 * 3 / num_stages
    max_batch = max(1, int((budget - weights_share) / max(per_sample_act, 1)))

    return PipelineParallelPlan(
        num_stages=num_stages,
        num_microbatches=m,
        batch_per_step=batch_per_step,
        step_time_s=compute_time + comm_time,
        bubble_fraction=bubble,
        per_stage_memory_bytes=per_stage_mem,
        max_feasible_batch=max_batch,
    )
