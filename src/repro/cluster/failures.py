"""Failure injection for simulated cluster runs.

Shared HPC clusters lose GPUs mid-run (ECC errors, preemption, node
reboots).  This module injects exponential-lifetime failures into the
experiment-parallel placement so the fault-tolerance story can be
quantified: a failed trial loses its un-checkpointed progress, waits
out the repair, and re-queues -- optionally resuming from its last
checkpoint (tying into ``repro.core.checkpoint``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .simulator import Resource, Simulator
from .trace import Timeline

__all__ = ["FailureModel", "FailureRunResult", "run_with_failures"]


@dataclass(frozen=True)
class FailureModel:
    """Exponential failures: a running task on one GPU fails with rate
    ``1 / mtbf_s``; a failure costs ``repair_s`` before the work can be
    retried on the (repaired) device."""

    mtbf_s: float
    repair_s: float = 300.0
    # Fraction of completed work preserved at restart (0 = from scratch,
    # e.g. 0.9 = per-epoch checkpoints lose at most the current epoch).
    checkpoint_fraction: float = 0.0

    def __post_init__(self):
        if self.mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive")
        if self.repair_s < 0:
            raise ValueError("repair_s must be >= 0")
        if not 0.0 <= self.checkpoint_fraction < 1.0:
            raise ValueError("checkpoint_fraction must be in [0, 1)")


@dataclass
class FailureRunResult:
    makespan: float
    num_failures: int
    wasted_seconds: float
    timeline: Timeline


def run_with_failures(
    durations: list[float],
    num_gpus: int,
    failure_model: FailureModel,
    seed: int = 0,
    per_trial_overhead: float = 0.0,
) -> FailureRunResult:
    """Experiment-parallel placement under failures.

    Each attempt of trial ``i`` samples an exponential failure time; if
    it lands inside the remaining work, the attempt aborts there, pays
    the repair, keeps ``checkpoint_fraction`` of the completed work and
    re-queues.  Returns the makespan, failure count and wasted compute.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    rng = np.random.default_rng(seed)
    sim = Simulator()
    pool = Resource(sim, capacity=num_gpus, name="gpus")
    timeline = Timeline()
    stats = {"failures": 0, "wasted": 0.0}

    def trial(idx: int, work: float):
        remaining = work + per_trial_overhead
        attempt = 0
        while True:
            yield pool.request()
            start = sim.now
            fail_after = float(rng.exponential(failure_model.mtbf_s))
            if fail_after >= remaining:
                yield sim.timeout(remaining)
                timeline.record(f"trial_{idx:02d}", start, sim.now,
                                "gpu", category="train",
                                attempt=attempt)
                pool.release()
                return
            # failure mid-attempt
            yield sim.timeout(fail_after)
            stats["failures"] += 1
            kept = fail_after * failure_model.checkpoint_fraction
            stats["wasted"] += fail_after - kept
            remaining -= kept
            timeline.record(f"trial_{idx:02d}_fail", start, sim.now,
                            "gpu", category="failure", attempt=attempt)
            yield sim.timeout(failure_model.repair_s)
            pool.release()
            attempt += 1

    for i, d in enumerate(durations):
        if d < 0:
            raise ValueError("durations must be non-negative")
        sim.process(trial(i, d))
    makespan = sim.run()
    return FailureRunResult(
        makespan=makespan,
        num_failures=stats["failures"],
        wasted_seconds=stats["wasted"],
        timeline=timeline,
    )


def expected_slowdown(duration_s: float, model: FailureModel) -> float:
    """Analytic expected completion time / duration for one task with
    restart-from-scratch semantics (checkpoint_fraction = 0):

    E[T] = (mtbf + repair) * (exp(d / mtbf) - 1) / d
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    m, r, d = model.mtbf_s, model.repair_s, duration_s
    return (m + r) * (math.exp(d / m) - 1.0) / d
