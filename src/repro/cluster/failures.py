"""Failure injection for simulated cluster runs.

Shared HPC clusters lose GPUs mid-run (ECC errors, preemption, node
reboots).  This module injects exponential-lifetime failures into the
experiment-parallel placement so the fault-tolerance story can be
quantified: a failed trial loses its un-checkpointed progress, waits
out the repair, and re-queues.

Checkpoint semantics mirror the in-process runner
(:func:`repro.raysim.tune.tune_run`): with ``num_epochs`` set, progress
is preserved at *discrete epoch boundaries* -- exactly what a
:class:`repro.core.checkpoint.CheckpointManager` saving once per epoch
gives you -- under the same :class:`repro.fault_tolerance.RetryPolicy`
(``resume="scratch"`` discards everything, ``max_retries`` caps the
attempts before a trial is abandoned).  The legacy continuous
``checkpoint_fraction`` remains for coarse modelling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..fault_tolerance import RetryPolicy
from .simulator import Resource, Simulator
from .trace import Timeline

__all__ = [
    "FailureModel",
    "FailureRunResult",
    "RetryRecord",
    "run_with_failures",
    "expected_slowdown",
]


@dataclass(frozen=True)
class FailureModel:
    """Exponential failures: a running task on one GPU fails with rate
    ``1 / mtbf_s``; a failure costs ``repair_s`` before the work can be
    retried on the (repaired) device."""

    mtbf_s: float
    repair_s: float = 300.0
    # Fraction of completed work preserved at restart (0 = from scratch,
    # e.g. 0.9 = per-epoch checkpoints lose at most the current epoch).
    # Ignored when run_with_failures() is given num_epochs, which models
    # discrete per-epoch checkpoints instead.
    checkpoint_fraction: float = 0.0

    def __post_init__(self):
        if self.mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive")
        if self.repair_s < 0:
            raise ValueError("repair_s must be >= 0")
        if not 0.0 <= self.checkpoint_fraction < 1.0:
            raise ValueError("checkpoint_fraction must be in [0, 1)")


@dataclass(frozen=True)
class RetryRecord:
    """One failed attempt of one trial (also embedded in the Timeline's
    ``failure`` events, so the Chrome trace shows every retry)."""

    trial: str
    attempt: int
    failed_at_s: float
    kept_work_s: float
    lost_work_s: float
    resumed_epoch: int | None = None


@dataclass
class FailureRunResult:
    makespan: float
    num_failures: int
    wasted_seconds: float
    timeline: Timeline
    num_abandoned: int = 0
    retries: list[RetryRecord] = field(default_factory=list)

    def attempts(self) -> dict[str, int]:
        """Per-trial attempt count (1 = finished first try)."""
        out: dict[str, int] = {}
        for ev in self.timeline.events:
            base = ev.name.replace("_abandoned", "").replace("_fail", "")
            out[base] = max(out.get(base, 0), ev.meta.get("attempt", 0) + 1)
        return out


def run_with_failures(
    durations: list[float],
    num_gpus: int,
    failure_model: FailureModel,
    seed: int = 0,
    per_trial_overhead: float = 0.0,
    num_epochs: int | Sequence[int] | None = None,
    retry_policy: RetryPolicy | None = None,
) -> FailureRunResult:
    """Experiment-parallel placement under failures.

    Each attempt of trial ``i`` samples an exponential failure time; if
    it lands inside the remaining work, the attempt aborts there, pays
    the repair, keeps its checkpointed progress and re-queues.

    Progress preserved across attempts:

    * ``num_epochs`` set (an int, or one per trial): the trial's work is
      ``num_epochs`` equal epochs and a failure rolls back to the last
      completed epoch boundary (per-epoch checkpoints);
    * otherwise: the continuous ``failure_model.checkpoint_fraction`` of
      the crashed attempt's progress survives.

    ``retry_policy`` (default: unlimited checkpoint-resume attempts)
    caps attempts at ``max_retries + 1`` -- a trial that exhausts them
    is *abandoned* (an ``abandoned`` timeline event, counted in
    ``num_abandoned``) -- and ``resume="scratch"`` discards all progress
    on every failure.  Every failed attempt is recorded as a
    :class:`RetryRecord` in ``retries`` and as a ``failure`` event in
    the timeline, so retry behaviour is visible in the Chrome trace.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if isinstance(num_epochs, (list, tuple)):
        if len(num_epochs) != len(durations):
            raise ValueError("num_epochs list must match durations")
        epochs_per_trial = [int(e) for e in num_epochs]
    elif num_epochs is not None:
        epochs_per_trial = [int(num_epochs)] * len(durations)
    else:
        epochs_per_trial = None
    if epochs_per_trial is not None and any(e < 1 for e in epochs_per_trial):
        raise ValueError("num_epochs must be >= 1")
    scratch = retry_policy is not None and retry_policy.resume == "scratch"
    max_attempts = retry_policy.max_attempts if retry_policy else None

    rng = np.random.default_rng(seed)
    sim = Simulator()
    pool = Resource(sim, capacity=num_gpus, name="gpus")
    timeline = Timeline()
    stats = {"failures": 0, "wasted": 0.0, "abandoned": 0}
    retries: list[RetryRecord] = []

    def trial(idx: int, work: float):
        name = f"trial_{idx:02d}"
        epoch_len = None
        if epochs_per_trial is not None and work > 0:
            epoch_len = work / epochs_per_trial[idx]
        done = 0.0  # checkpointed work units carried across attempts
        attempt = 0
        while True:
            yield pool.request()
            start = sim.now
            need = (work - done) + per_trial_overhead
            fail_after = float(rng.exponential(failure_model.mtbf_s))
            if fail_after >= need:
                yield sim.timeout(need)
                resumed = (
                    int(round(done / epoch_len))
                    if epoch_len and done > 0 else None
                )
                timeline.record(name, start, sim.now, "gpu",
                                category="train", attempt=attempt,
                                resumed_epoch=resumed)
                pool.release()
                return
            # failure mid-attempt
            yield sim.timeout(fail_after)
            stats["failures"] += 1
            progressed = max(0.0, fail_after - per_trial_overhead)
            total = done + progressed
            if scratch:
                kept = 0.0
            elif epoch_len is not None:
                kept = min(total,
                           math.floor(total / epoch_len + 1e-9) * epoch_len)
            else:
                kept = done + progressed * failure_model.checkpoint_fraction
            lost = total - kept
            stats["wasted"] += lost
            resumed = (
                int(round(kept / epoch_len))
                if epoch_len and kept > 0 else None
            )
            retries.append(RetryRecord(
                trial=name, attempt=attempt, failed_at_s=sim.now,
                kept_work_s=kept, lost_work_s=lost, resumed_epoch=resumed,
            ))
            timeline.record(f"{name}_fail", start, sim.now, "gpu",
                            category="failure", attempt=attempt,
                            kept_work_s=kept, lost_work_s=lost,
                            resumed_epoch=resumed)
            done = kept
            yield sim.timeout(failure_model.repair_s)
            pool.release()
            attempt += 1
            if max_attempts is not None and attempt >= max_attempts:
                stats["abandoned"] += 1
                timeline.record(f"{name}_abandoned", sim.now, sim.now,
                                "gpu", category="abandoned",
                                attempt=attempt - 1)
                return

    for i, d in enumerate(durations):
        if d < 0:
            raise ValueError("durations must be non-negative")
        sim.process(trial(i, d))
    makespan = sim.run()
    return FailureRunResult(
        makespan=makespan,
        num_failures=stats["failures"],
        wasted_seconds=stats["wasted"],
        timeline=timeline,
        num_abandoned=stats["abandoned"],
        retries=retries,
    )


def expected_slowdown(duration_s: float, model: FailureModel) -> float:
    """Analytic expected completion time / duration for one task with
    restart-from-scratch semantics (checkpoint_fraction = 0):

    E[T] = (mtbf + repair) * (exp(d / mtbf) - 1) / d
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    m, r, d = model.mtbf_s, model.repair_s, duration_s
    return (m + r) * (math.exp(d / m) - 1.0) / d
