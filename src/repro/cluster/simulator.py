"""Discrete-event simulation engine.

A small coroutine-process simulator (in the spirit of SimPy) that the
cluster-scale experiments run on: *processes* are generators that yield
events -- timeouts, resource requests, other processes -- and resume
when the event fires.  Time is virtual, so a 44-hour hyper-parameter
search (Table I) simulates in milliseconds while every scheduling
decision (who waits for which GPU, when the all-reduce barrier releases)
is executed faithfully.

Example
-------
>>> sim = Simulator()
>>> gpus = Resource(sim, capacity=4, name="gpus")
>>> def trial(duration):
...     req = gpus.request()
...     yield req
...     yield sim.timeout(duration)
...     gpus.release()
>>> for d in [3.0, 2.0, 4.0]:
...     sim.process(trial(d))
>>> sim.run()
>>> sim.now
4.0
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Generator, Iterable

__all__ = ["Simulator", "Event", "Timeout", "Process", "Resource", "AllOf",
           "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for protocol violations (double-trigger, bad release...)."""


class Event:
    """A one-shot occurrence processes can wait on."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value = None
        self._callbacks: list[Callable[["Event"], None]] = []

    def succeed(self, value=None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for cb in self._callbacks:
            self.sim._schedule(0.0, lambda cb=cb: cb(self))
        self._callbacks.clear()
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.sim._schedule(0.0, lambda: cb(self))
        else:
            self._callbacks.append(cb)


class Timeout(Event):
    """Event that fires ``delay`` after creation."""

    def __init__(self, sim: "Simulator", delay: float, value=None):
        if delay < 0:
            raise ValueError(f"negative timeout {delay}")
        super().__init__(sim)
        self.delay = delay
        sim._schedule(delay, lambda: self.succeed(value))


class Process(Event):
    """A running generator; itself an event that fires on return."""

    def __init__(self, sim: "Simulator", gen: Generator):
        super().__init__(sim)
        self._gen = gen
        sim._schedule(0.0, lambda: self._advance(None))

    def _advance(self, send_value) -> None:
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Events"
            )
        target.add_callback(lambda ev: self._advance(ev.value))


class AllOf(Event):
    """Fires when every child event has fired; value is the value list."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            sim._schedule(0.0, lambda: self.succeed([]))
            return
        for ev in self._events:
            ev.add_callback(self._child_done)

    def _child_done(self, _ev: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])


class Resource:
    """Counted capacity with a FIFO wait queue (e.g. a pool of GPUs)."""

    def __init__(self, sim: "Simulator", capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    def request(self) -> Event:
        """Event that fires when a unit is granted."""
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._waiters:
            ev = self._waiters.popleft()
            ev.succeed(self)  # hand the unit over directly
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Simulator:
    """The event loop: a priority queue of (time, seq, thunk)."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def _schedule(self, delay: float, fn: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def timeout(self, delay: float, value=None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator) -> Process:
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def run(self, until: float | None = None) -> float:
        """Drain the event queue (optionally stopping the clock at
        ``until``); returns the final simulated time."""
        while self._heap:
            t, _, fn = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if t < self.now - 1e-12:
                raise SimulationError("time went backwards")
            self.now = t
            fn()
        return self.now

    def peek(self) -> float | None:
        """Time of the next pending event, if any."""
        return self._heap[0][0] if self._heap else None
