"""Interconnect link models.

A link is (latency, effective bandwidth); transfer time is the classic
alpha-beta model ``t = alpha + bytes / beta``.  Presets approximate the
paper's hardware: NVLink 2.0 between the V100s of one Power9 node,
EDR InfiniBand between nodes, PCIe 3.0 to the host.  Effective
bandwidths are the ~70-80% of peak that collective libraries sustain.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LinkSpec",
    "transfer_time",
    "NVLINK2",
    "INFINIBAND_EDR",
    "PCIE3_X16",
    "ETHERNET_10G",
]


@dataclass(frozen=True)
class LinkSpec:
    """Point-to-point link: start-up latency and sustained bandwidth."""

    name: str
    latency_s: float
    bandwidth_gbs: float  # GB/s (bytes * 1e-9)

    def __post_init__(self):
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbs * 1e9


def transfer_time(nbytes: int, link: LinkSpec) -> float:
    """Alpha-beta cost of moving ``nbytes`` across ``link``."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    return link.latency_s + nbytes / link.bandwidth_bytes_per_s


# NVLink 2.0: 3 bricks/GPU on Power9 = 75 GB/s peak per direction;
# sustained collective throughput ~70%.
NVLINK2 = LinkSpec(name="NVLink 2.0", latency_s=3e-6, bandwidth_gbs=52.0)

# EDR InfiniBand: 100 Gb/s = 12.5 GB/s peak, ~10 GB/s sustained, ~1.5 us.
INFINIBAND_EDR = LinkSpec(name="InfiniBand EDR", latency_s=1.5e-6,
                          bandwidth_gbs=10.0)

# PCIe 3.0 x16: 15.75 GB/s peak, ~12 sustained.
PCIE3_X16 = LinkSpec(name="PCIe 3.0 x16", latency_s=5e-6, bandwidth_gbs=12.0)

# Commodity alternative for the ablation sweeps.
ETHERNET_10G = LinkSpec(name="10GbE", latency_s=3e-5, bandwidth_gbs=1.1)
