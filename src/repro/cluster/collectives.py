"""Collective-communication algorithms: cost models and exact math.

Two layers:

* **Cost models** -- analytic time estimates for ring / tree /
  hierarchical all-reduce under the alpha-beta link model.  These drive
  the simulated Table I reproduction: the paper's data-parallel method
  pays a NVLink ring inside each 4-GPU node plus an InfiniBand ring
  across node leaders once more than one node is used (NCCL's
  hierarchical strategy).
* **Exact numerics** -- :func:`ring_allreduce` really performs the
  chunked reduce-scatter + all-gather on a list of NumPy arrays and is
  used by the in-process data-parallel trainer, so the "gradients are
  averaged across replicas" step is executed by the same algorithm whose
  cost is being modelled (and property-tested for sum-invariance).
"""

from __future__ import annotations

import math
import time

import numpy as np

from .network import LinkSpec, transfer_time

__all__ = [
    "ring_allreduce_time",
    "tree_allreduce_time",
    "hierarchical_allreduce_time",
    "allreduce_time",
    "ring_allreduce",
]


def ring_allreduce_time(nbytes: int, n: int, link: LinkSpec) -> float:
    """Ring all-reduce: 2(n-1) steps each moving ``nbytes/n``.

    t = 2 (n-1) (alpha + nbytes / (n * beta))
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return 0.0
    chunk = nbytes / n
    return 2 * (n - 1) * (link.latency_s + chunk / link.bandwidth_bytes_per_s)


def tree_allreduce_time(nbytes: int, n: int, link: LinkSpec) -> float:
    """Binary-tree reduce + broadcast: 2 ceil(log2 n) full-message hops.

    Latency-optimal for small messages; bandwidth-suboptimal for large.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return 0.0
    hops = 2 * math.ceil(math.log2(n))
    return hops * transfer_time(nbytes, link)


def hierarchical_allreduce_time(
    nbytes: int,
    gpus_per_node: int,
    num_nodes: int,
    intra_link: LinkSpec,
    inter_link: LinkSpec,
) -> float:
    """NCCL-style hierarchical all-reduce over ``num_nodes`` nodes of
    ``gpus_per_node`` GPUs:

    1. ring reduce-scatter + all-gather inside each node (NVLink),
    2. ring all-reduce of the node-local results across node leaders
       (InfiniBand),
    3. intra-node broadcast of the final result (counted inside the
       first ring's all-gather phase re-run at half cost).
    """
    if gpus_per_node < 1 or num_nodes < 1:
        raise ValueError("counts must be >= 1")
    t = 0.0
    if gpus_per_node > 1:
        t += ring_allreduce_time(nbytes, gpus_per_node, intra_link)
    if num_nodes > 1:
        t += ring_allreduce_time(nbytes, num_nodes, inter_link)
        if gpus_per_node > 1:
            # re-broadcast the globally reduced buffer inside the node
            t += 0.5 * ring_allreduce_time(nbytes, gpus_per_node, intra_link)
    return t


def allreduce_time(
    nbytes: int,
    num_gpus: int,
    gpus_per_node: int,
    intra_link: LinkSpec,
    inter_link: LinkSpec,
) -> float:
    """Dispatch on topology: single GPU is free, a single node uses the
    NVLink ring, multiple nodes use the hierarchical algorithm over the
    densely packed layout (the paper's three cases of Section III-B2)."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if num_gpus == 1:
        return 0.0
    if num_gpus <= gpus_per_node:
        return ring_allreduce_time(nbytes, num_gpus, intra_link)
    num_nodes = math.ceil(num_gpus / gpus_per_node)
    return hierarchical_allreduce_time(
        nbytes, gpus_per_node, num_nodes, intra_link, inter_link
    )


def ring_allreduce(buffers: list[np.ndarray], average: bool = False,
                   telemetry=None) -> list[np.ndarray]:
    """Exact ring all-reduce over per-replica buffers.

    Performs the textbook chunked reduce-scatter followed by an
    all-gather; every returned buffer equals the elementwise sum (or
    mean) of the inputs.  Inputs are not modified.  ``telemetry`` (a
    :class:`repro.telemetry.TelemetryHub`, default the process hub)
    receives the operation count and the wire bytes the ring would move
    -- ``2 (n-1)/n`` of the payload per participant, the quantity the
    cost model prices.
    """
    n = len(buffers)
    if n == 0:
        raise ValueError("need at least one buffer")
    if telemetry is None:
        from ..telemetry import get_hub

        telemetry = get_hub()
    payload = sum(b.nbytes for b in buffers)
    telemetry.metrics.counter(
        "allreduce_ops_total", "exact ring all-reduce invocations").inc()
    telemetry.metrics.counter(
        "allreduce_bytes_total",
        "bytes the chunked ring moves over the wire (2(n-1)/n x payload)",
    ).inc(2 * (n - 1) / n * payload)
    shape = buffers[0].shape
    for b in buffers:
        if b.shape != shape:
            raise ValueError("all buffers must share a shape")
    if n == 1:
        # Single replica: no exchange happens, so nothing lands in the
        # "sync" step bucket -- exactly the paper's C1 claim that
        # experiment parallelism pays zero gradient-sync overhead.
        out = buffers[0].astype(np.float64, copy=True)
        return [out]

    t_sync0 = time.perf_counter()
    flat = [b.astype(np.float64).ravel().copy() for b in buffers]
    size = flat[0].size
    bounds = np.linspace(0, size, n + 1).astype(int)
    chunks = [slice(bounds[i], bounds[i + 1]) for i in range(n)]

    # Reduce-scatter: after n-1 steps, rank r holds the full sum of
    # chunk (r + 1) mod n.
    for step in range(n - 1):
        for rank in range(n):
            send_chunk = (rank - step) % n
            dst = (rank + 1) % n
            flat_dst_view = flat[dst][chunks[send_chunk]]
            flat_dst_view += flat[rank][chunks[send_chunk]]
    # All-gather: circulate the completed chunks.
    for step in range(n - 1):
        for rank in range(n):
            done_chunk = (rank + 1 - step) % n
            dst = (rank + 1) % n
            flat[dst][chunks[done_chunk]] = flat[rank][chunks[done_chunk]]

    if average:
        for f in flat:
            f /= n
    out = [f.reshape(shape) for f in flat]
    dt = time.perf_counter() - t_sync0
    telemetry.metrics.counter(
        "allreduce_seconds_total",
        "wall-clock spent inside the exact ring all-reduce").inc(dt)
    telemetry.on_step_bucket("sync", dt)
    return out
