"""Execution traces and timelines.

Simulated runs record ``TraceEvent`` spans (what ran where, from when to
when); :class:`Timeline` aggregates them into makespan / utilisation
statistics and can export Chrome-trace JSON (`chrome://tracing`,
Perfetto) for visual inspection -- the counterpart of the paper's
TensorBoard profiling step.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["TraceEvent", "Timeline"]


@dataclass(frozen=True)
class TraceEvent:
    """A half-open span ``[start, end)`` on a named resource lane."""

    name: str
    start: float
    end: float
    resource: str
    category: str = "span"
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"event ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Ordered collection of trace events with summary statistics."""

    def __init__(self):
        self.events: list[TraceEvent] = []

    def record(self, name: str, start: float, end: float, resource: str,
               category: str = "span", **meta) -> TraceEvent:
        ev = TraceEvent(name=name, start=start, end=end, resource=resource,
                        category=category, meta=meta)
        self.events.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.events)

    def makespan(self) -> float:
        """End of the last event (0 when empty)."""
        return max((e.end for e in self.events), default=0.0)

    def start_time(self) -> float:
        return min((e.start for e in self.events), default=0.0)

    def resources(self) -> list[str]:
        return sorted({e.resource for e in self.events})

    def busy_time(self, resource: str) -> float:
        """Union length of the resource's busy intervals (overlaps merged)."""
        spans = sorted(
            ((e.start, e.end) for e in self.events if e.resource == resource)
        )
        total = 0.0
        cur_start: float | None = None
        cur_end = 0.0
        for s, e in spans:
            if cur_start is None:
                cur_start, cur_end = s, e
            elif s <= cur_end:
                cur_end = max(cur_end, e)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = s, e
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def utilization(self, resource: str, horizon: float | None = None) -> float:
        """Busy fraction of ``resource`` over the run (or ``horizon``).

        The run window is ``makespan() - start_time()``, so a timeline
        whose first event starts late (e.g. recording began mid-run) is
        not diluted by the idle lead-in.  An explicit ``horizon`` is an
        absolute duration measured from time zero.
        """
        span = (horizon if horizon is not None
                else self.makespan() - self.start_time())
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time(resource) / span)

    def mean_utilization(self, horizon: float | None = None) -> float:
        res = self.resources()
        if not res:
            return 0.0
        return sum(self.utilization(r, horizon) for r in res) / len(res)

    def by_category(self) -> dict[str, float]:
        """Total duration per event category (compute vs comm vs io...)."""
        out: dict[str, float] = defaultdict(float)
        for e in self.events:
            out[e.category] += e.duration
        return dict(out)

    def to_chrome_trace(self, path=None) -> list[dict]:
        """Chrome-trace 'X' (complete) events, microsecond timestamps."""
        lanes = {r: i for i, r in enumerate(self.resources())}
        out = [
            {
                "name": e.name,
                "cat": e.category,
                "ph": "X",
                "ts": e.start * 1e6,
                "dur": e.duration * 1e6,
                "pid": 0,
                "tid": lanes[e.resource],
                "args": dict(e.meta),
            }
            for e in sorted(self.events, key=lambda e: e.start)
        ]
        if path is not None:
            Path(path).write_text(json.dumps(out))
        return out
