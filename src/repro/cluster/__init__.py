"""``repro.cluster`` -- the HPC cluster substrate.

Stands in for the BSC MareNostrum-CTE GPU environment: hardware specs
(:mod:`~repro.cluster.resources`), alpha-beta interconnect models
(:mod:`~repro.cluster.network`), collective-communication algorithms --
both cost models and exact NumPy ring all-reduce
(:mod:`~repro.cluster.collectives`) -- a coroutine discrete-event
simulator (:mod:`~repro.cluster.simulator`) and execution timelines
(:mod:`~repro.cluster.trace`).
"""

from .failures import (
    FailureModel,
    FailureRunResult,
    RetryRecord,
    expected_slowdown,
    run_with_failures,
)
from .modelparallel import PipelineParallelPlan, plan_pipeline_parallel
from .collectives import (
    allreduce_time,
    hierarchical_allreduce_time,
    ring_allreduce,
    ring_allreduce_time,
    tree_allreduce_time,
)
from .network import (
    ETHERNET_10G,
    INFINIBAND_EDR,
    NVLINK2,
    PCIE3_X16,
    LinkSpec,
    transfer_time,
)
from .resources import (
    POWER9_NODE,
    V100_16GB,
    ClusterSpec,
    DeviceId,
    GPUSpec,
    NodeSpec,
    fits_in_gpu_memory,
    marenostrum_cte,
    unet3d_activation_bytes,
)
from .simulator import (
    AllOf,
    Event,
    Process,
    Resource,
    SimulationError,
    Simulator,
    Timeout,
)
from .trace import Timeline, TraceEvent

__all__ = [
    "GPUSpec",
    "NodeSpec",
    "ClusterSpec",
    "DeviceId",
    "V100_16GB",
    "POWER9_NODE",
    "marenostrum_cte",
    "unet3d_activation_bytes",
    "fits_in_gpu_memory",
    "LinkSpec",
    "transfer_time",
    "NVLINK2",
    "INFINIBAND_EDR",
    "PCIE3_X16",
    "ETHERNET_10G",
    "ring_allreduce_time",
    "tree_allreduce_time",
    "hierarchical_allreduce_time",
    "allreduce_time",
    "ring_allreduce",
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Resource",
    "AllOf",
    "SimulationError",
    "Timeline",
    "TraceEvent",
    "FailureModel",
    "FailureRunResult",
    "RetryRecord",
    "expected_slowdown",
    "run_with_failures",
    "PipelineParallelPlan",
    "plan_pipeline_parallel",
]
