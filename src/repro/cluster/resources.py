"""Hardware resource specifications.

Models the paper's benchmarking environment (Section IV-B): the BSC
MareNostrum-CTE cluster of 52 IBM Power9 nodes (2x20 cores @ 2.4 GHz),
each with 4 NVIDIA V100 16 GB GPUs, interconnected with InfiniBand.
Specs are plain dataclasses consumed by the network/collective cost
models and the discrete-event simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .network import LinkSpec, INFINIBAND_EDR, NVLINK2, PCIE3_X16

__all__ = [
    "GPUSpec",
    "NodeSpec",
    "ClusterSpec",
    "DeviceId",
    "V100_16GB",
    "POWER9_NODE",
    "marenostrum_cte",
    "unet3d_activation_bytes",
    "fits_in_gpu_memory",
]


@dataclass(frozen=True)
class GPUSpec:
    """An accelerator model."""

    name: str
    memory_bytes: int
    fp32_tflops: float
    mem_bandwidth_gbs: float

    @property
    def memory_gb(self) -> float:
        return self.memory_bytes / 2**30


V100_16GB = GPUSpec(
    name="NVIDIA V100 16GB",
    memory_bytes=16 * 2**30,
    fp32_tflops=15.7,
    mem_bandwidth_gbs=900.0,
)


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: CPU sockets plus attached GPUs and intra-node links."""

    name: str
    num_gpus: int
    gpu: GPUSpec
    cpu_cores: int
    cpu_ghz: float
    host_memory_bytes: int
    intra_link: LinkSpec = NVLINK2
    host_link: LinkSpec = PCIE3_X16

    def __post_init__(self):
        if self.num_gpus < 1:
            raise ValueError("a node needs at least one GPU")


POWER9_NODE = NodeSpec(
    name="IBM Power9 8335-GTH",
    num_gpus=4,
    gpu=V100_16GB,
    cpu_cores=40,  # 2 sockets x 20 cores
    cpu_ghz=2.4,
    host_memory_bytes=512 * 2**30,
)


@dataclass(frozen=True)
class DeviceId:
    """Global GPU address: (node index, local GPU index)."""

    node: int
    local: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"node{self.node}:gpu{self.local}"


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of nodes joined by an inter-node fabric."""

    num_nodes: int
    node: NodeSpec = POWER9_NODE
    inter_link: LinkSpec = INFINIBAND_EDR
    name: str = "cluster"

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("a cluster needs at least one node")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.node.num_gpus

    def device(self, global_index: int) -> DeviceId:
        """Map a global GPU index to its (node, local) address; GPUs are
        packed node-by-node, matching Slurm-style allocation."""
        if not 0 <= global_index < self.total_gpus:
            raise ValueError(
                f"GPU index {global_index} out of range [0, {self.total_gpus})"
            )
        return DeviceId(
            node=global_index // self.node.num_gpus,
            local=global_index % self.node.num_gpus,
        )

    def devices(self, count: int | None = None) -> list[DeviceId]:
        """First ``count`` GPUs (default all), packed densely."""
        n = self.total_gpus if count is None else count
        if n > self.total_gpus:
            raise ValueError(
                f"requested {n} GPUs but cluster has {self.total_gpus}"
            )
        return [self.device(i) for i in range(n)]

    def nodes_for(self, num_gpus: int) -> int:
        """Minimum node count hosting ``num_gpus`` densely-packed GPUs."""
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        return math.ceil(num_gpus / self.node.num_gpus)


def marenostrum_cte(num_nodes: int = 8) -> ClusterSpec:
    """The paper's benchmarking cluster (1..8 nodes used of 52)."""
    if not 1 <= num_nodes <= 52:
        raise ValueError("MareNostrum-CTE has 52 Power9 nodes")
    return ClusterSpec(num_nodes=num_nodes, node=POWER9_NODE,
                       inter_link=INFINIBAND_EDR, name="MareNostrum-CTE")


def unet3d_activation_bytes(
    spatial: tuple[int, int, int],
    base_filters: int = 8,
    depth: int = 4,
    batch_per_replica: int = 2,
    bytes_per_value: int = 4,
    train: bool = True,
) -> int:
    """Rough activation-memory footprint of the paper's 3D U-Net.

    Counts the feature maps held live during a training step: each
    conv/BN/ReLU stage on both paths retains its output for backprop
    (TensorFlow keeps the conv output *and* the normalised tensor), plus
    the skip tensors and the channel-doubled concat buffers -- about ten
    width-f maps per resolution level.  The constant is calibrated so
    the model reproduces the paper's feasibility edge: 2 full volumes
    per 16 GB V100 fit, 3 do not (Sections IV-B, V-C); the test suite
    pins that edge.
    """
    voxels = 1
    for s in spatial:
        voxels *= s
    total = 0.0
    for level in range(depth):
        f = base_filters * 2**level
        level_voxels = voxels / (8**level)
        maps = 10 if level < depth - 1 else 4
        total += maps * f * level_voxels
    total *= batch_per_replica * bytes_per_value
    if train:
        total *= 2.0  # stored activations + gradients
    return int(total)


def fits_in_gpu_memory(
    gpu: GPUSpec,
    model_params: int,
    activation_bytes: int,
    optimizer_slots: int = 2,
    bytes_per_value: int = 4,
    reserve_fraction: float = 0.08,
) -> bool:
    """Memory feasibility check: weights + grads + optimizer state
    (Adam: 2 slots) + activations against the device, with a runtime
    reserve (CUDA context, workspace)."""
    weights = model_params * bytes_per_value
    state = weights * (1 + optimizer_slots)  # grads + slots
    need = weights + state + activation_bytes
    budget = gpu.memory_bytes * (1.0 - reserve_fraction)
    return need <= budget
