"""Production inference serving for the best tuned model.

The tuning pipeline ends with a best-trial checkpoint; this package is
what runs it: a pool of checkpoint-loaded model replicas on warm worker
processes (:mod:`repro.execpool`) behind an admission queue with
dynamic micro-batching, size-based routing between full-volume and
sliding-window inference, heartbeat/fail-over-backed retries for
replica crashes, and a telemetry-driven autoscaler.  ``distmis
serve-bench`` load-tests the stack and records the serving latency
trajectory (``BENCH_serving.json``).

Served predictions are bit-identical to offline
:func:`repro.core.inference.full_volume_inference` on the same volume
-- see :mod:`repro.serve.replica` for why micro-batching amortises
dispatch, never the GEMM.
"""

from .autoscaler import Autoscaler, AutoscalerConfig
from .batcher import BatchKey, MicroBatcher
from .bench import run_serve_bench, write_serving_record
from .replica import replica_factory
from .server import InferenceResponse, ModelServer, ServeConfig, ServeFuture

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "BatchKey",
    "MicroBatcher",
    "run_serve_bench",
    "write_serving_record",
    "replica_factory",
    "InferenceResponse",
    "ModelServer",
    "ServeConfig",
    "ServeFuture",
]
