"""Production inference serving for the best tuned model.

The tuning pipeline ends with a best-trial checkpoint; this package is
what runs it: a pool of checkpoint-loaded model replicas on warm worker
processes (:mod:`repro.execpool`) behind an admission queue with
dynamic micro-batching, size-based routing between full-volume and
sliding-window inference, heartbeat/fail-over-backed retries for
replica crashes, and a telemetry-driven autoscaler.  ``distmis
serve-bench`` load-tests the stack and records the serving latency
trajectory (``BENCH_serving.json``).

Large requests are served scatter--gather: the driver decomposes a
sliding-window request into patch-chunk tasks, the weighted-fair
micro-batcher interleaves chunks across requests (so small requests
are never stuck behind a large request's fan-out), and the driver
stitches the gathered chunks.  ``submit(..., priority=)`` weights the
fair scheduler via :data:`PRIORITIES` and, past a configurable
backlog, low-priority admissions are shed at submit.

Served predictions are bit-identical to the offline strategies
(:func:`repro.core.inference.full_volume_inference` /
:func:`repro.core.inference.sliding_window_inference`) on the same
volume -- see :mod:`repro.serve.replica` for why micro-batching and
chunk scheduling amortise dispatch, never regroup the GEMM.
"""

from .autoscaler import Autoscaler, AutoscalerConfig
from .batcher import BatchKey, MicroBatcher
from .bench import run_serve_bench, write_serving_record
from .replica import replica_factory
from .server import (
    PRIORITIES,
    InferenceResponse,
    ModelServer,
    ServeConfig,
    ServeFuture,
)

__all__ = [
    "PRIORITIES",
    "Autoscaler",
    "AutoscalerConfig",
    "BatchKey",
    "MicroBatcher",
    "run_serve_bench",
    "write_serving_record",
    "replica_factory",
    "InferenceResponse",
    "ModelServer",
    "ServeConfig",
    "ServeFuture",
]
