"""serve-bench: open-loop load generation for the replica pool.

Drives a :class:`~repro.serve.server.ModelServer` at a fixed offered
rate for a fixed duration and summarises what came back -- tail latency
(p50/p95/p99), achieved throughput and the micro-batch size histogram
-- as a ``BENCH_serving.json`` record in the same schema the kernel and
scaling benchmarks use (:mod:`repro.perf.regression`), so serving
latency becomes the repo's third tracked performance trajectory next to
compute and scaling.

The generator is **open-loop** (arrivals follow the schedule, never the
responses), the standard way to expose queueing delay: a closed loop
would slow its own arrivals exactly when the server falls behind and
hide the backlog the autoscaler and the ``serve_backlog`` alert exist
to catch.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from ..perf.regression import host_metadata, validate_record

__all__ = ["run_serve_bench", "write_serving_record"]


def _percentiles(latencies: list[float]) -> dict:
    lat = np.asarray(sorted(latencies), dtype=np.float64)
    return {
        "p50": float(np.percentile(lat, 50)),
        "p95": float(np.percentile(lat, 95)),
        "p99": float(np.percentile(lat, 99)),
        "mean": float(lat.mean()),
        "max": float(lat.max()),
    }


def run_serve_bench(server, volumes, rps: float, duration_s: float,
                    smoke: bool = False) -> dict:
    """Offer ``rps * duration_s`` requests on a fixed schedule; returns
    the ``BENCH_serving.json`` record (not yet written).

    ``volumes`` is a non-empty sequence of (C, D, H, W) arrays replayed
    round-robin -- the bench measures the serving stack, not the data.
    """
    if rps <= 0 or duration_s <= 0:
        raise ValueError("rps and duration_s must be > 0")
    if not len(volumes):
        raise ValueError("need at least one volume to serve")
    n_total = max(1, int(round(rps * duration_s)))
    futures = []
    sent = 0
    t0 = time.monotonic()
    while sent < n_total or server.pending_count():
        now = time.monotonic()
        while sent < n_total and t0 + sent / rps <= now:
            futures.append(server.submit(volumes[sent % len(volumes)]))
            sent += 1
        server.step()
        # sleep to the next interesting instant (next arrival or batch
        # deadline), capped so worker completions are noticed promptly
        next_send = t0 + sent / rps if sent < n_total else math.inf
        deadline = server.batcher.next_deadline()
        wake = min(next_send, math.inf if deadline is None else deadline)
        pause = min(0.005, wake - time.monotonic())
        if pause > 0:
            time.sleep(pause)
    elapsed = time.monotonic() - t0
    done = [f for f in futures if f._error is None]
    failed = len(futures) - len(done)
    responses = [f.result() for f in done]
    if not responses:
        raise RuntimeError(
            f"serve-bench completed no requests ({failed} failed)")
    hist: dict[str, int] = {}
    for r in responses:
        hist[str(r.batch_size)] = hist.get(str(r.batch_size), 0) + 1
    cfg = server.config
    return {
        "benchmark": "serving",
        "smoke": bool(smoke),
        "host": host_metadata(),
        "config": {
            "offered_rps": float(rps),
            "duration": float(duration_s),
            "replicas": int(cfg.replicas),
            "max_batch": int(cfg.max_batch),
            "max_delay_ms": float(cfg.max_delay_ms),
            "autoscale": bool(cfg.autoscale),
        },
        "requests": {
            "sent": len(futures),
            "completed": len(responses),
            "failed": failed,
            "retried": sum(1 for r in responses if r.attempt > 0),
        },
        "latency_seconds": _percentiles([r.latency_s for r in responses]),
        # The fixed SLO bucket grid as [edge_seconds, cumulative_count]
        # pairs.  A *list* (not a dict) on purpose: the regression
        # gate's flattener only descends dicts, so raw bucket counts
        # never become gated trajectory metrics (the percentiles above
        # are the gated summary), while the full distribution is still
        # persisted for cross-run histogram diffs.
        "latency_histogram": {"buckets": server.latency_histogram()},
        "throughput_rps": len(responses) / elapsed,
        "batch_size": {
            "mean": float(np.mean([r.batch_size for r in responses])),
            "max": int(max(r.batch_size for r in responses)),
            "histogram": hist,
        },
        "service_seconds_mean": float(
            np.mean([r.model_seconds for r in responses])),
        # Replica-side kernel attribution ("backend/op" -> seconds),
        # drained per batch so long-lived replicas stay bounded.
        "kernel_seconds": {
            key: float(v)
            for key, v in sorted(server.kernel_seconds().items())
        },
    }


def write_serving_record(record: dict, path) -> Path:
    """Validate against the shared bench schema (including the serving
    benchmark's required percentiles) and write it."""
    problems = validate_record(record, path=path)
    if problems:
        raise ValueError("; ".join(problems))
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
