"""serve-bench: open-loop load generation for the replica pool.

Drives a :class:`~repro.serve.server.ModelServer` at a fixed offered
rate for a fixed duration and summarises what came back -- tail latency
(p50/p95/p99) overall, per priority and per workload class, achieved
throughput, shed count and the micro-batch size histogram -- as a
``BENCH_serving.json`` record in the same schema the kernel and scaling
benchmarks use (:mod:`repro.perf.regression`), so serving latency
becomes the repo's third tracked performance trajectory next to compute
and scaling.

The generator is **open-loop** (arrivals follow the schedule, never the
responses), the standard way to expose queueing delay: a closed loop
would slow its own arrivals exactly when the server falls behind and
hide the backlog the autoscaler and the ``serve_backlog`` alert exist
to catch.

Two knobs build the overload scenarios of experiment E21:

* ``priority_mix`` -- ``{"high": 0.2, "normal": 0.6, "low": 0.2}``
  assigns request priorities by a seeded draw, exercising the weighted
  fair scheduler and (with ``ServeConfig.shed_backlog``) admission
  shedding;
* ``large_volumes`` / ``large_every`` -- every Nth request sends a
  large sliding-window volume into a stream of small ones, the
  mixed-workload point where scatter--gather dispatch shows its
  small-request p99 win over whole-request dispatch.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from ..perf.regression import host_metadata, validate_record

__all__ = ["run_serve_bench", "write_serving_record",
           "STANDARD_PRIORITIES"]

# the per-priority latency block always carries these levels (zero-count
# when unused) so the regression gate's required metrics are present in
# every serving record, whatever mix a given run offered
STANDARD_PRIORITIES = ("high", "normal", "low")


def _percentiles(latencies) -> dict:
    if not len(latencies):
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0,
                "max": 0.0}
    lat = np.asarray(sorted(latencies), dtype=np.float64)
    return {
        "p50": float(np.percentile(lat, 50)),
        "p95": float(np.percentile(lat, 95)),
        "p99": float(np.percentile(lat, 99)),
        "mean": float(lat.mean()),
        "max": float(lat.max()),
    }


def _class_block(responses) -> dict:
    return {"count": len(responses),
            "latency_seconds": _percentiles(
                [r.latency_s for r in responses])}


def run_serve_bench(server, volumes, rps: float, duration_s: float,
                    smoke: bool = False, priority_mix: dict | None = None,
                    large_volumes=None, large_every: int = 0,
                    seed: int = 0) -> dict:
    """Offer ``rps * duration_s`` requests on a fixed schedule; returns
    the ``BENCH_serving.json`` record (not yet written).

    ``volumes`` is a non-empty sequence of (C, D, H, W) arrays replayed
    round-robin -- the bench measures the serving stack, not the data.
    ``priority_mix`` maps priority name to offered fraction (seeded
    draw, deterministic per ``seed``); ``large_every`` > 0 replaces
    every Nth request with one of ``large_volumes`` and splits the
    latency summary into small/large workload classes.
    """
    if rps <= 0 or duration_s <= 0:
        raise ValueError("rps and duration_s must be > 0")
    if not len(volumes):
        raise ValueError("need at least one volume to serve")
    if large_every < 0:
        raise ValueError("large_every must be >= 0")
    if large_every > 0 and not (large_volumes is not None
                                and len(large_volumes)):
        raise ValueError("large_every > 0 needs large_volumes")
    if priority_mix:
        total = float(sum(priority_mix.values()))
        if total <= 0 or any(v < 0 for v in priority_mix.values()):
            raise ValueError("priority_mix fractions must be >= 0 and "
                             "sum > 0")
        names = sorted(priority_mix)
        probs = [priority_mix[n] / total for n in names]
        rng = np.random.default_rng(seed)
    n_total = max(1, int(round(rps * duration_s)))
    futures = []   # (future, priority, workload_class)
    sent = 0
    t0 = time.monotonic()
    while sent < n_total or server.pending_count():
        now = time.monotonic()
        while sent < n_total and t0 + sent / rps <= now:
            priority = (str(rng.choice(names, p=probs))
                        if priority_mix else "normal")
            if large_every and (sent + 1) % large_every == 0:
                vol = large_volumes[(sent // large_every)
                                    % len(large_volumes)]
                cls = "large"
            else:
                vol = volumes[sent % len(volumes)]
                cls = "small"
            futures.append(
                (server.submit(vol, priority=priority), priority, cls))
            sent += 1
        server.step()
        # sleep to the next interesting instant (next arrival or batch
        # deadline), capped so worker completions are noticed promptly
        next_send = t0 + sent / rps if sent < n_total else math.inf
        deadline = server.batcher.next_deadline()
        wake = min(next_send, math.inf if deadline is None else deadline)
        pause = min(0.005, wake - time.monotonic())
        if pause > 0:
            time.sleep(pause)
    elapsed = time.monotonic() - t0
    shed = [(f, p, c) for f, p, c in futures if f.shed]
    done = [(f, p, c) for f, p, c in futures
            if f._error is None and not f.shed]
    failed = len(futures) - len(done) - len(shed)
    responses = [(f.result(), p, c) for f, p, c in done]
    if not responses:
        raise RuntimeError(
            f"serve-bench completed no requests ({failed} failed, "
            f"{len(shed)} shed)")
    hist: dict[str, int] = {}
    for r, _, _ in responses:
        hist[str(r.batch_size)] = hist.get(str(r.batch_size), 0) + 1
    # per-priority latency: every standard level is always present
    # (zero-count when unused) plus any custom level the run offered
    levels = list(STANDARD_PRIORITIES) + sorted(
        {p for _, p, _ in responses} - set(STANDARD_PRIORITIES))
    priorities = {
        level: dict(
            _class_block([r for r, p, _ in responses if p == level]),
            shed=sum(1 for _, p, _ in shed if p == level))
        for level in levels
    }
    cfg = server.config
    record = {
        "benchmark": "serving",
        "smoke": bool(smoke),
        "host": host_metadata(),
        "config": {
            "offered_rps": float(rps),
            "duration": float(duration_s),
            "replicas": int(cfg.replicas),
            "max_batch": int(cfg.max_batch),
            "max_delay_ms": float(cfg.max_delay_ms),
            "autoscale": bool(cfg.autoscale),
            "scatter_gather": bool(cfg.scatter_gather),
            "shed_backlog": int(cfg.shed_backlog),
            "compute_dtype": cfg.compute_dtype or "float64",
            "priority_mix": dict(priority_mix or {}),
            "large_every": int(large_every),
        },
        "requests": {
            "sent": len(futures),
            "completed": len(responses),
            "failed": failed,
            "shed": len(shed),
            "retried": sum(1 for r, _, _ in responses if r.attempt > 0),
        },
        "latency_seconds": _percentiles(
            [r.latency_s for r, _, _ in responses]),
        # The fixed SLO bucket grid as [edge_seconds, cumulative_count]
        # pairs.  A *list* (not a dict) on purpose: the regression
        # gate's flattener only descends dicts, so raw bucket counts
        # never become gated trajectory metrics (the percentiles above
        # are the gated summary), while the full distribution is still
        # persisted for cross-run histogram diffs.
        "latency_histogram": {"buckets": server.latency_histogram()},
        "priorities": priorities,
        "throughput_rps": len(responses) / elapsed,
        "batch_size": {
            "mean": float(np.mean([r.batch_size
                                   for r, _, _ in responses])),
            "max": int(max(r.batch_size for r, _, _ in responses)),
            "histogram": hist,
        },
        "service_seconds_mean": float(
            np.mean([r.model_seconds for r, _, _ in responses])),
        # Replica-side kernel attribution ("backend/op" -> seconds),
        # drained per batch so long-lived replicas stay bounded.
        "kernel_seconds": {
            key: float(v)
            for key, v in sorted(server.kernel_seconds().items())
        },
    }
    if large_every:
        record["mixed_workload"] = {
            "large_every": int(large_every),
            "small": _class_block(
                [r for r, _, c in responses if c == "small"]),
            "large": _class_block(
                [r for r, _, c in responses if c == "large"]),
        }
    return record


def write_serving_record(record: dict, path) -> Path:
    """Validate against the shared bench schema (including the serving
    benchmark's required percentiles) and write it."""
    problems = validate_record(record, path=path)
    if problems:
        raise ValueError("; ".join(problems))
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
