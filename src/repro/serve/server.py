"""Production inference serving: micro-batched replica pool + fail-over.

:class:`ModelServer` fronts N checkpoint-loaded model replicas (warm
worker processes from :class:`repro.execpool.executor.ProcessPoolTrialExecutor`)
with an admission queue:

* :meth:`ModelServer.submit` routes a volume to full-volume or
  sliding-window inference by size and parks it in the
  :class:`~repro.serve.batcher.MicroBatcher`;
* :meth:`ModelServer.step` -- the single driver entry point, called
  from the caller's loop exactly like
  :meth:`repro.telemetry.live.LiveMonitor.tick` -- flushes due batches
  to the pool, drains worker messages, fails dead replicas over
  (in-flight requests are **retried, not dropped**: attempt-stamped
  resubmission, the same guard the tuning driver uses), heals the pool
  back to its target size, and applies
  :class:`~repro.serve.autoscaler.Autoscaler` decisions via
  ``add_worker`` / ``retire_worker``;
* :meth:`ModelServer.drain` blocks until every admitted request has a
  response.

No background threads anywhere: everything advances inside ``step``,
driven by monotonic time, so the whole control loop is deterministic
under test.  Telemetry lands on the ambient hub (``serve_queue_depth``,
``serve_replicas``, latency/batch-size histograms) and feeds the
``serve_backlog`` alert rule plus the live monitor when one is
attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..execpool import ProcessPoolTrialExecutor
from ..telemetry.metrics import Histogram
from ..telemetry.tracing import (SERVE_LATENCY_BUCKETS, RequestTracer,
                                 TracingConfig)
from .autoscaler import Autoscaler, AutoscalerConfig
from .batcher import BatchKey, MicroBatcher
from .replica import replica_factory

__all__ = ["ServeConfig", "InferenceResponse", "ServeFuture",
           "ModelServer"]


@dataclass
class ServeConfig:
    """Everything a replica pool needs to serve one checkpoint."""

    checkpoint: str               # best-trial .npz (CheckpointManager)
    model_builder: Callable       # picklable, e.g. repro.nn.UNet3D
    model_kwargs: dict = field(default_factory=dict)
    replicas: int = 2
    max_batch: int = 4
    max_delay_ms: float = 10.0    # micro-batch deadline
    # volumes whose spatial voxel count exceeds this go to the
    # sliding-window strategy instead of one full-volume pass
    full_volume_max_voxels: int = 64 ** 3
    patch_shape: tuple = (16, 16, 16)
    overlap: float = 0.5
    sw_batch_size: int = 4
    max_retries: int = 2          # per-batch fail-over budget
    autoscale: bool = False
    autoscaler: AutoscalerConfig | None = None
    heartbeat_s: float = 0.5
    start_method: str | None = None
    tracing: TracingConfig | None = None  # None -> TracingConfig()

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


@dataclass
class InferenceResponse:
    """One served prediction plus its latency/batching provenance."""

    request_id: str
    prediction: np.ndarray        # (C, D, H, W)
    strategy: str
    latency_s: float              # admission -> response, monotonic
    batch_size: int               # requests coalesced into the batch
    replica: int | None           # worker id that answered
    attempt: int                  # >0 means the request survived retry
    model_seconds: float          # replica-side inference time (batch)
    checkpoint_epoch: int | None = None
    # Per-request phase decomposition (telescoping: queue_wait +
    # batch_wait + dispatch + compute + stitch == latency_s exactly).
    trace_id: str = ""
    queue_wait_s: float = 0.0     # admission -> micro-batch release
    batch_wait_s: float = 0.0     # release -> a replica picked it up
    dispatch_s: float = 0.0       # queue hand-off/pickling overhead
    compute_s: float = 0.0        # replica-measured inference window
    stitch_s: float = 0.0         # result message -> resolved future


class ServeFuture:
    """Handle for an admitted request; resolved by ``server.step()``."""

    def __init__(self, request_id: str):
        self.request_id = request_id
        self._response: InferenceResponse | None = None
        self._error: str | None = None

    def done(self) -> bool:
        return self._response is not None or self._error is not None

    def result(self) -> InferenceResponse:
        if self._error is not None:
            raise RuntimeError(
                f"request {self.request_id} failed: {self._error}")
        if self._response is None:
            raise RuntimeError(
                f"request {self.request_id} is still pending -- drive "
                "server.step() / server.drain()")
        return self._response


@dataclass
class _Pending:
    volume: np.ndarray
    key: BatchKey
    future: ServeFuture
    arrival_mono: float
    # Trace context lives driver-side with the pending request, so a
    # SIGKILL-retried batch resubmits under the *same* trace_id -- one
    # request, one trace, however many attempts it took.
    ctx: object = None            # TraceContext
    released_mono: float | None = None  # micro-batcher let the batch go


@dataclass
class _Inflight:
    key: BatchKey
    request_ids: list
    attempt: int
    worker: int | None = None     # unknown until "started" arrives
    started_mono: float | None = None   # when "started" arrived


class ModelServer:
    """Micro-batched, autoscaled, fault-tolerant model serving.

    >>> server = ModelServer(ServeConfig(checkpoint=best, ...))
    >>> fut = server.submit(volume)
    >>> server.drain()
    >>> fut.result().prediction
    """

    def __init__(self, config: ServeConfig, telemetry=None):
        if telemetry is None:
            from ..telemetry import get_hub

            telemetry = get_hub()
        self.config = config
        self.telemetry = telemetry
        self.tracing = config.tracing or TracingConfig()
        self.request_tracer = RequestTracer(telemetry=telemetry,
                                            config=self.tracing)
        attach = getattr(telemetry, "attach_request_tracer", None)
        if attach is not None:
            attach(self.request_tracer)
        self.batcher = MicroBatcher(max_batch=config.max_batch,
                                    max_delay_s=config.max_delay_ms / 1e3)
        self.autoscaler = Autoscaler(
            config.autoscaler) if config.autoscale else None
        self.executor = ProcessPoolTrialExecutor(
            trainable_factory=replica_factory,
            factory_kwargs={"checkpoint": config.checkpoint,
                            "model_builder": config.model_builder,
                            "model_kwargs": dict(config.model_kwargs)},
            max_workers=config.replicas,
            start_method=config.start_method,
            telemetry=telemetry,
            heartbeat_s=config.heartbeat_s,
            # replica compute spans must flow back even when the hub is
            # not in full profile mode -- that is what parents them into
            # the per-request timelines
            worker_telemetry=(self.tracing.enabled
                              and bool(getattr(telemetry, "enabled",
                                               False))),
        )
        self._target_replicas = config.replicas
        self._pending: dict[str, _Pending] = {}
        self._inflight: dict[str, _Inflight] = {}
        self._handled_dead: set[int] = set()
        self._n_requests = 0
        self._n_batches = 0
        self._closed = False
        m = telemetry.metrics
        self._g_queue = m.gauge(
            "serve_queue_depth", "requests admitted, not yet answered")
        self._g_inflight = m.gauge(
            "serve_inflight_requests", "requests dispatched to replicas")
        self._g_replicas = m.gauge(
            "serve_replicas", "model replicas serving the queue")
        self._c_requests = m.counter(
            "serve_requests_total", "served requests by outcome",
            ("status",))
        self._c_retries = m.counter(
            "serve_batch_retries_total",
            "batches resubmitted after a replica failure")
        self._h_latency = m.histogram(
            "serve_latency_seconds", "admission-to-response latency",
            buckets=SERVE_LATENCY_BUCKETS)
        self._h_batch = m.histogram(
            "serve_batch_size", "requests coalesced per dispatched batch")
        # A local always-on copy of the latency histogram: quantile
        # gauges, SLO alerts and the serve-bench histogram export must
        # work even when the ambient hub is the null hub.
        self._latency_hist = Histogram(
            "serve_latency_seconds", "admission-to-response latency",
            buckets=SERVE_LATENCY_BUCKETS)
        self._g_p50 = m.gauge(
            "serve_latency_p50", "median serve latency (bucket estimate)")
        self._g_p95 = m.gauge(
            "serve_latency_p95", "p95 serve latency (bucket estimate)")
        self._g_p99 = m.gauge(
            "serve_latency_p99", "p99 serve latency (bucket estimate)")
        # Same counter name the trainer drains its ledger into, so the
        # profiler's per-backend compute split covers serving too.
        self._c_kernel = m.counter(
            "kernel_seconds_total",
            "replica kernel time by backend and op",
            ("backend", "op"))
        self._kernel_seconds: dict[str, float] = {}
        self._g_replicas.set(self.executor.worker_count())

    # -- admission ----------------------------------------------------------
    def route(self, volume: np.ndarray) -> str:
        """Strategy for one (C, D, H, W) volume: small enough for a
        single full-volume pass, else tiled sliding-window."""
        spatial_voxels = int(np.prod(volume.shape[1:]))
        return ("full_volume"
                if spatial_voxels <= self.config.full_volume_max_voxels
                else "sliding_window")

    def submit(self, volume: np.ndarray,
               request_id: str | None = None) -> ServeFuture:
        """Admit one (C, D, H, W) volume; returns a future resolved by
        a later :meth:`step`."""
        if self._closed:
            raise RuntimeError("server is closed")
        volume = np.asarray(volume)
        if volume.ndim != 4:
            raise ValueError(
                f"expected one (C, D, H, W) volume, got {volume.shape}")
        if request_id is None:
            request_id = f"req_{self._n_requests:06d}"
        if request_id in self._pending:
            raise ValueError(f"duplicate request id {request_id!r}")
        self._n_requests += 1
        key = BatchKey(strategy=self.route(volume),
                       shape=tuple(volume.shape), dtype=str(volume.dtype))
        future = ServeFuture(request_id)
        now = time.monotonic()
        self._pending[request_id] = _Pending(
            volume=volume, key=key, future=future, arrival_mono=now,
            ctx=self.request_tracer.begin(request_id))
        self.batcher.add(request_id, key, now)
        self._g_queue.set(len(self._pending))
        return future

    def pending_count(self) -> int:
        """Requests admitted but not yet answered (queued + in flight)."""
        return len(self._pending)

    def kernel_seconds(self) -> dict[str, float]:
        """Cumulative replica kernel time by ``"backend/op"`` across every
        completed batch (serve-bench reports this attribution)."""
        return dict(self._kernel_seconds)

    def request_traces(self):
        """The kept per-request timelines (tail-sampled), oldest first."""
        return self.request_tracer.traces()

    def latency_quantile(self, q: float) -> float:
        """Bucket-estimated latency quantile over every answered
        request (NaN before the first response)."""
        return self._latency_hist.quantile(q)

    def latency_histogram(self) -> list[list[float]]:
        """Cumulative ``[edge_seconds, count]`` pairs -- the fixed
        SLO bucket grid serve-bench persists."""
        cum = 0
        out = []
        for edge, n in zip(self._latency_hist.buckets,
                           self._latency_hist.bucket_counts):
            cum += n
            out.append([float(edge), int(cum)])
        return out

    # -- dispatch -----------------------------------------------------------
    def _dispatch(self, key: BatchKey, request_ids: list,
                  attempt: int = 0, now: float | None = None) -> None:
        batch_id = f"batch_{self._n_batches:06d}"
        self._n_batches += 1
        now = time.monotonic() if now is None else now
        for rid in request_ids:
            pending = self._pending.get(rid)
            if pending is not None and pending.released_mono is None:
                pending.released_mono = now  # queue_wait ends here
        self._submit_batch(batch_id, key, request_ids, attempt)
        if attempt == 0:
            self._h_batch.observe(len(request_ids))

    def _submit_batch(self, batch_id: str, key: BatchKey,
                      request_ids: list, attempt: int) -> None:
        volumes = np.stack(
            [self._pending[rid].volume for rid in request_ids])
        task = {"volumes": volumes, "strategy": key.strategy}
        if key.strategy == "sliding_window":
            task["patch_shape"] = tuple(self.config.patch_shape)
            task["overlap"] = float(self.config.overlap)
            task["sw_batch_size"] = int(self.config.sw_batch_size)
        # Trace-context propagation: the contexts ride the task dict
        # over the existing pickle path and are re-attached by the
        # replica's worker-side span.  Retries resubmit the same
        # contexts (they live in _Pending), keeping one trace_id per
        # request across attempts.
        contexts = {
            rid: self._pending[rid].ctx.to_dict()
            for rid in request_ids
            if getattr(self._pending.get(rid), "ctx", None) is not None
        }
        if contexts and self.tracing.enabled:
            task["trace"] = {"batch_id": batch_id, "attempt": int(attempt),
                             "contexts": contexts}
        self._inflight[batch_id] = _Inflight(
            key=key, request_ids=list(request_ids), attempt=attempt)
        self.executor.submit(batch_id, task, attempt=attempt)

    def _retry_batch(self, batch_id: str, batch: _Inflight,
                     reason: str) -> None:
        """Resubmit a failed batch, or fail its requests when the
        retry budget is spent."""
        if batch.attempt + 1 <= self.config.max_retries:
            self._c_retries.inc()
            self._inflight.pop(batch_id, None)
            self._submit_batch(batch_id, batch.key, batch.request_ids,
                               batch.attempt + 1)
            return
        self._inflight.pop(batch_id, None)
        for rid in batch.request_ids:
            pending = self._pending.pop(rid, None)
            if pending is None:
                continue
            pending.future._error = reason
            self._c_requests.labels(status="failed").inc()
            if pending.ctx is not None:
                # error traces are always kept by the tail sampler
                self.request_tracer.complete(
                    pending.ctx, rid,
                    arrival=pending.arrival_mono,
                    released=pending.released_mono,
                    started=batch.started_mono,
                    completed=time.monotonic(),
                    attempt=batch.attempt, strategy=batch.key.strategy,
                    batch_id=batch_id, batch_size=len(batch.request_ids),
                    replica=batch.worker, error=reason)

    # -- the driver loop ----------------------------------------------------
    def step(self, now: float | None = None) -> int:
        """Advance the control loop once; returns messages processed.

        Non-blocking: flushes due micro-batches, drains every queued
        worker message, fails over dead replicas, heals the pool to the
        target size, then lets the autoscaler adjust that target.
        """
        if self._closed:
            return 0
        now = time.monotonic() if now is None else now
        for key, rids in self.batcher.due(now):
            self._dispatch(key, rids, now=now)
        processed = 0
        while True:
            msg = self.executor.poll_message()
            if msg is None:
                break
            self._handle(msg)
            processed += 1
        self._fail_over_dead(now)
        self._autoscale(now)
        inflight_requests = sum(
            len(b.request_ids) for b in self._inflight.values())
        # backlog is *unanswered requests*, not the batcher's holding
        # pen: full batches leave the batcher instantly, so saturation
        # shows up as dispatched-but-unanswered work piling onto the
        # shared task queue
        self._g_queue.set(len(self._pending))
        self._g_inflight.set(inflight_requests)
        self._g_replicas.set(self.executor.worker_count())
        live = getattr(self.telemetry, "live", None)
        quantiles = {}
        if self._latency_hist.count:
            quantiles = {"serve_latency_p50": self._latency_hist.quantile(.5),
                         "serve_latency_p95": self._latency_hist.quantile(.95),
                         "serve_latency_p99": self._latency_hist.quantile(.99)}
            self._g_p50.set(quantiles["serve_latency_p50"])
            self._g_p95.set(quantiles["serve_latency_p95"])
            self._g_p99.set(quantiles["serve_latency_p99"])
        if live is not None:
            live.set_value("serve_queue_depth", float(len(self._pending)))
            live.set_value("serve_inflight", float(inflight_requests))
            live.set_value("serve_replicas",
                           float(self.executor.worker_count()))
            for name, value in quantiles.items():
                live.set_value(name, value)  # feeds serve_p99_slo alerts
        self.telemetry.live_tick()
        return processed

    def drain(self, timeout_s: float = 60.0) -> None:
        """Block until every admitted request has a response (or raise
        after ``timeout_s`` with requests still unanswered)."""
        deadline = time.monotonic() + timeout_s
        while self._pending:
            if self.step() > 0:
                continue
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{len(self._pending)} requests still pending after "
                    f"{timeout_s:g}s")
            # idle: block briefly for the next message instead of
            # spinning, bounded so deadline flushes stay on time
            wait = self.batcher.next_deadline()
            block = 0.05 if wait is None else max(
                0.001, min(0.05, wait - time.monotonic()))
            try:
                self._handle(self.executor.next_message(timeout=block))
            except TimeoutError:
                pass
            except RuntimeError:
                # every replica died at once; fail-over below respawns
                self._fail_over_dead(time.monotonic())

    # -- message handling ---------------------------------------------------
    def _handle(self, msg) -> None:
        kind = msg[0]
        live = getattr(self.telemetry, "live", None)
        if kind == "heartbeat":
            if live is not None:
                live.on_heartbeat(msg[1])
        elif kind == "telemetry":
            self.telemetry.ingest_worker_frame(msg[1])
        elif kind == "retired":
            pass  # an autoscaler-requested drain completing
        elif kind == "started":
            _, batch_id, worker_id, attempt = msg
            batch = self._inflight.get(batch_id)
            if batch is not None and batch.attempt == attempt:
                batch.worker = worker_id
                batch.started_mono = time.monotonic()  # batch_wait ends
        elif kind == "report":
            pass  # replicas never call the reporter
        elif kind == "done":
            _, batch_id, attempt, final, _stopped, stats = msg
            batch = self._inflight.get(batch_id)
            if batch is None or batch.attempt != attempt:
                return  # stale: already failed over to a new attempt
            self._inflight.pop(batch_id)
            self._complete(batch_id, batch, final, stats)
        elif kind == "error":
            _, batch_id, attempt, message, _stats = msg
            batch = self._inflight.get(batch_id)
            if batch is None or batch.attempt != attempt:
                return
            self._retry_batch(batch_id, batch, message)

    def _complete(self, batch_id: str, batch: _Inflight, final: dict,
                  stats) -> None:
        done = time.monotonic()   # the result message reached the driver
        worker = batch.worker
        if worker is None and stats:
            worker = stats.get("worker_id")
        replica_pid = stats.get("pid") if stats else None
        # Per-batch kernel attribution the replica drained from its
        # ledger ("backend/op" -> seconds).
        kernel = {k: float(v)
                  for k, v in (final.get("kernel_seconds") or {}).items()}
        for key, seconds in kernel.items():
            backend, _, op = key.partition("/")
            self._c_kernel.labels(backend=backend, op=op).inc(seconds)
            self._kernel_seconds[key] = (
                self._kernel_seconds.get(key, 0.0) + seconds)
        prediction = np.asarray(final["prediction"])
        for i, rid in enumerate(batch.request_ids):
            pending = self._pending.pop(rid, None)
            if pending is None:
                continue
            completed = time.monotonic()
            trace = self.request_tracer.complete(
                pending.ctx, rid,
                arrival=pending.arrival_mono,
                released=pending.released_mono,
                started=batch.started_mono,
                done=done, completed=completed,
                # the request waits on the whole batch's compute window
                compute_s=float(final["seconds"]),
                attempt=batch.attempt, strategy=final["strategy"],
                batch_id=batch_id, batch_size=len(batch.request_ids),
                replica=worker, replica_pid=replica_pid,
                kernel_seconds=kernel)
            phases = trace.phase_durations()
            # latency from the trace so the five phase durations sum to
            # it exactly (same clock, same endpoints)
            latency = trace.latency_s
            pending.future._response = InferenceResponse(
                request_id=rid,
                prediction=prediction[i],
                strategy=final["strategy"],
                latency_s=latency,
                batch_size=len(batch.request_ids),
                replica=worker,
                attempt=batch.attempt,
                model_seconds=float(final["seconds"]),
                checkpoint_epoch=final.get("checkpoint_epoch"),
                trace_id=trace.trace_id,
                queue_wait_s=phases["queue_wait"],
                batch_wait_s=phases["batch_wait"],
                dispatch_s=phases["dispatch"],
                compute_s=phases["compute"],
                stitch_s=phases["stitch"],
            )
            self._latency_hist.observe(latency)
            self._h_latency.observe(
                latency, exemplar={"trace_id": trace.trace_id,
                                   "request_id": rid})
            self._c_requests.labels(status="completed").inc()

    # -- failure and scale --------------------------------------------------
    def _fail_over_dead(self, now: float) -> None:
        """Retry (not drop) the in-flight batches of replicas whose
        process exited, then heal the pool back to the target size."""
        live = getattr(self.telemetry, "live", None)
        for wid in self.executor.dead_workers():
            if wid in self._handled_dead:
                continue
            self._handled_dead.add(wid)
            if live is not None:
                live.on_worker_dead(wid)
            for batch_id, batch in list(self._inflight.items()):
                if batch.worker == wid:
                    self._retry_batch(
                        batch_id, batch,
                        f"replica {wid} died mid-batch")
        while (not self._closed
               and self.executor.worker_count() < self._target_replicas):
            self.executor.add_worker()

    def _autoscale(self, now: float) -> None:
        if self.autoscaler is None:
            return
        decision = self.autoscaler.observe(
            queue_depth=len(self._pending),
            inflight=len(self._inflight),
            replicas=self._target_replicas,
            now=now)
        if decision == "scale_up":
            self._target_replicas += 1
            self.executor.add_worker()
        elif decision == "retire":
            wid = self._retire_candidate()
            if wid is not None:
                self._target_replicas -= 1
                self.executor.retire_worker(wid)

    def _retire_candidate(self) -> int | None:
        """Highest-id live replica with no known in-flight batch --
        retire drains safely anyway, idle just exits sooner."""
        busy = {b.worker for b in self._inflight.values()}
        alive = self.executor.alive_workers()
        for wid in sorted(alive, reverse=True):
            if wid not in busy:
                return wid
        return alive[-1] if alive else None

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.executor.shutdown()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
