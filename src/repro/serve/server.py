"""Production inference serving: scatter--gather micro-batched replicas.

:class:`ModelServer` fronts N checkpoint-loaded model replicas (warm
worker processes from :class:`repro.execpool.executor.ProcessPoolTrialExecutor`)
with an admission queue:

* :meth:`ModelServer.submit` routes a volume to full-volume or
  sliding-window inference by size.  Sliding-window requests are
  **scattered**: decomposed into the exact per-chunk ``model.predict``
  invocations offline :func:`repro.core.inference.sliding_window_inference`
  would run (:func:`~repro.core.inference.sliding_window_spec` /
  :func:`~repro.core.inference.chunk_bounds`), each chunk a separately
  schedulable work item.  The :class:`~repro.serve.batcher.MicroBatcher`
  coalesces chunks *across requests* into replica tasks under weighted
  fair queuing, so a small request admitted behind a 100-chunk volume
  no longer waits for all of it -- the head-of-line-blocking fix
  measured in ``BENCH_serving.json``.  ``submit(..., priority=)`` maps
  to the fair scheduler's weights, and when the backlog (the same
  ``serve_queue_depth`` signal the ``serve_backlog`` alert watches)
  exceeds ``shed_backlog``, sheddable priorities are rejected at
  admission instead of poisoning every queue behind them.
* Chunk predictions **gather** driver-side: buffered per request as
  they return from whatever replica ran them, then stitched in one
  canonical-order pass (:func:`~repro.core.inference.stitch_chunks`)
  -- bit-identical to offline inference regardless of arrival order,
  by construction.
* :meth:`ModelServer.step` -- the single driver entry point, called
  from the caller's loop exactly like
  :meth:`repro.telemetry.live.LiveMonitor.tick` -- drains worker
  messages, fails dead replicas over (in-flight work is **retried, not
  dropped**, at chunk-task granularity: a dead replica re-runs only
  its chunks, not whole requests), releases due batches under dispatch
  credits (``max_inflight_per_replica`` tasks per live replica, so the
  backlog accumulates in the fair batcher rather than the replicas'
  FIFO task queue), heals the pool to its target size, and applies
  :class:`~repro.serve.autoscaler.Autoscaler` decisions -- shed
  admissions count as backlog pressure so shedding cannot starve the
  scale-up signal.
* :meth:`ModelServer.drain` blocks until every admitted request has a
  response.

No background threads anywhere: everything advances inside ``step``,
driven by monotonic time, so the whole control loop is deterministic
under test.  Telemetry lands on the ambient hub (``serve_queue_depth``,
``serve_replicas``, ``serve_shed_total``, latency/batch-size
histograms) and feeds the ``serve_backlog`` alert rule plus the live
monitor when one is attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.inference import (chunk_bounds, sliding_window_spec,
                              stitch_chunks)
from ..data.patches import extract_patches
from ..execpool import ProcessPoolTrialExecutor
from ..telemetry.metrics import Histogram
from ..telemetry.tracing import (SERVE_LATENCY_BUCKETS, RequestTracer,
                                 TracingConfig)
from .autoscaler import Autoscaler, AutoscalerConfig
from .batcher import BatchKey, MicroBatcher
from .replica import replica_factory

__all__ = ["ServeConfig", "InferenceResponse", "ServeFuture",
           "ModelServer", "PRIORITIES"]

# priority -> weighted-fair share of release slots (see batcher stride
# scheduling); the default ladder gives high 4x low's slots under
# contention without ever starving low outright
PRIORITIES = {"high": 4.0, "normal": 2.0, "low": 1.0}

_COMPUTE_DTYPES = (None, "float32", "float64")


@dataclass
class ServeConfig:
    """Everything a replica pool needs to serve one checkpoint."""

    checkpoint: str               # best-trial .npz (CheckpointManager)
    model_builder: Callable       # picklable, e.g. repro.nn.UNet3D
    model_kwargs: dict = field(default_factory=dict)
    replicas: int = 2
    max_batch: int = 4
    max_delay_ms: float = 10.0    # micro-batch deadline
    # volumes whose spatial voxel count exceeds this go to the
    # sliding-window strategy instead of one full-volume pass
    full_volume_max_voxels: int = 64 ** 3
    patch_shape: tuple = (16, 16, 16)
    overlap: float = 0.5
    sw_batch_size: int = 4
    max_retries: int = 2          # per-task fail-over budget
    autoscale: bool = False
    autoscaler: AutoscalerConfig | None = None
    heartbeat_s: float = 0.5
    start_method: str | None = None
    tracing: TracingConfig | None = None  # None -> TracingConfig()
    # scatter--gather: decompose sliding-window requests into patch-chunk
    # tasks balanced across replicas (False = legacy whole-request tasks,
    # kept for the dispatch-mode comparison in BENCH_serving.json)
    scatter_gather: bool = True
    # submit(priority=...) -> weighted-fair share; keys are the accepted
    # priorities (validated at admission)
    priority_weights: dict = field(
        default_factory=lambda: dict(PRIORITIES))
    # backlog (unanswered requests) at which sheddable priorities are
    # rejected at admission; 0 disables shedding.  Pairs with the
    # serve_backlog alert, which fires on the same queue-depth signal.
    shed_backlog: int = 0
    shed_priorities: tuple = ("low",)
    # dispatch credits: tasks in flight per live replica before the
    # batcher stops releasing (backlog then waits *fairly* here instead
    # of FIFO on the shared task queue)
    max_inflight_per_replica: int = 2
    # float32 serving mode (ROADMAP 1c): set the replicas' kernel dtype
    # policy; None keeps the ambient float64 default.  float32 trades
    # the bit-identity-to-offline-float64 guarantee for speed -- the
    # trade-off is a labelled row in BENCH_serving.json.
    compute_dtype: str | None = None

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if self.full_volume_max_voxels < 1:
            raise ValueError("full_volume_max_voxels must be >= 1")
        if not 0.0 <= float(self.overlap) < 1.0:
            raise ValueError("overlap must be in [0, 1)")
        if self.sw_batch_size < 1:
            raise ValueError("sw_batch_size must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be > 0")
        if not self.priority_weights:
            raise ValueError("priority_weights must not be empty")
        for prio, weight in self.priority_weights.items():
            if weight <= 0:
                raise ValueError(
                    f"priority {prio!r} weight must be > 0, got {weight}")
        unknown = set(self.shed_priorities) - set(self.priority_weights)
        if unknown:
            raise ValueError(
                f"shed_priorities {sorted(unknown)} not in "
                f"priority_weights {sorted(self.priority_weights)}")
        if self.shed_backlog < 0:
            raise ValueError("shed_backlog must be >= 0")
        if self.max_inflight_per_replica < 1:
            raise ValueError("max_inflight_per_replica must be >= 1")
        if self.compute_dtype not in _COMPUTE_DTYPES:
            raise ValueError(
                f"compute_dtype must be one of {_COMPUTE_DTYPES}, got "
                f"{self.compute_dtype!r}")


@dataclass
class InferenceResponse:
    """One served prediction plus its latency/batching provenance."""

    request_id: str
    prediction: np.ndarray        # (C, D, H, W)
    strategy: str
    latency_s: float              # admission -> response, monotonic
    batch_size: int               # items coalesced into the (last) batch
    replica: int | None           # worker id that answered (last chunk's)
    attempt: int                  # >0 means the request survived retry
    model_seconds: float          # replica-side inference time
    checkpoint_epoch: int | None = None
    # Per-request phase decomposition (telescoping: queue_wait +
    # batch_wait + dispatch + compute + stitch == latency_s exactly).
    trace_id: str = ""
    queue_wait_s: float = 0.0     # admission -> micro-batch release
    batch_wait_s: float = 0.0     # release -> a replica picked it up
    dispatch_s: float = 0.0       # queue hand-off/pickling overhead
    compute_s: float = 0.0        # replica-measured inference window
    stitch_s: float = 0.0         # result message -> resolved future
    # scatter--gather provenance
    priority: str = "normal"
    chunks: int = 0               # patch-chunk tasks (0 = whole-request)
    chunk_replicas: list = field(default_factory=list)


class ServeFuture:
    """Handle for an admitted request; resolved by ``server.step()``.

    ``shed`` is True when admission rejected the request under backlog
    pressure -- the future is immediately done and ``result()`` raises.
    """

    def __init__(self, request_id: str):
        self.request_id = request_id
        self.shed = False
        self._response: InferenceResponse | None = None
        self._error: str | None = None

    def done(self) -> bool:
        return self._response is not None or self._error is not None

    def result(self) -> InferenceResponse:
        if self._error is not None:
            raise RuntimeError(
                f"request {self.request_id} failed: {self._error}")
        if self._response is None:
            raise RuntimeError(
                f"request {self.request_id} is still pending -- drive "
                "server.step() / server.drain()")
        return self._response


@dataclass
class _Pending:
    volume: np.ndarray
    key: BatchKey
    future: ServeFuture
    arrival_mono: float
    priority: str = "normal"
    # Trace context lives driver-side with the pending request, so a
    # SIGKILL-retried task resubmits under the *same* trace_id -- one
    # request, one trace, however many attempts it took.
    ctx: object = None            # TraceContext
    released_mono: float | None = None  # first item left the batcher
    # -- scatter--gather state (sliding-window requests only) --------------
    scattered: bool = False
    patches: np.ndarray | None = None     # (n_patches, C, *patch)
    offsets: list | None = None
    bounds: list | None = None            # chunk_bounds() ranges
    chunk_results: dict = field(default_factory=dict)  # ci -> (n,C,*patch)
    chunk_seconds: dict = field(default_factory=dict)  # ci -> replica s
    chunk_spans: list = field(default_factory=list)
    started_mono: float | None = None     # first chunk picked up
    done_mono: float | None = None        # last chunk result arrived
    attempt_max: int = 0


@dataclass
class _Inflight:
    key: BatchKey
    items: list                   # work-item ids (rids, or "rid#cNN")
    request_ids: list             # distinct requests with skin in the task
    attempt: int
    worker: int | None = None     # unknown until "started" arrives
    started_mono: float | None = None   # when "started" arrived


class ModelServer:
    """Micro-batched, autoscaled, fault-tolerant model serving.

    >>> server = ModelServer(ServeConfig(checkpoint=best, ...))
    >>> fut = server.submit(volume, priority="high")
    >>> server.drain()
    >>> fut.result().prediction
    """

    def __init__(self, config: ServeConfig, telemetry=None):
        if telemetry is None:
            from ..telemetry import get_hub

            telemetry = get_hub()
        self.config = config
        self.telemetry = telemetry
        self.tracing = config.tracing or TracingConfig()
        self.request_tracer = RequestTracer(telemetry=telemetry,
                                            config=self.tracing)
        attach = getattr(telemetry, "attach_request_tracer", None)
        if attach is not None:
            attach(self.request_tracer)
        self.batcher = MicroBatcher(max_batch=config.max_batch,
                                    max_delay_s=config.max_delay_ms / 1e3)
        self.autoscaler = Autoscaler(
            config.autoscaler) if config.autoscale else None
        self.executor = ProcessPoolTrialExecutor(
            trainable_factory=replica_factory,
            factory_kwargs={"checkpoint": config.checkpoint,
                            "model_builder": config.model_builder,
                            "model_kwargs": dict(config.model_kwargs),
                            "compute_dtype": config.compute_dtype},
            max_workers=config.replicas,
            start_method=config.start_method,
            telemetry=telemetry,
            heartbeat_s=config.heartbeat_s,
            # replica compute spans must flow back even when the hub is
            # not in full profile mode -- that is what parents them into
            # the per-request timelines
            worker_telemetry=(self.tracing.enabled
                              and bool(getattr(telemetry, "enabled",
                                               False))),
        )
        self._target_replicas = config.replicas
        self._pending: dict[str, _Pending] = {}
        self._inflight: dict[str, _Inflight] = {}
        # chunk work-item id -> (request_id, chunk_index); the scatter
        # registry items resolve through until their request finishes
        self._chunk_items: dict[str, tuple[str, int]] = {}
        self._handled_dead: set[int] = set()
        self._n_requests = 0
        self._n_batches = 0
        self._n_shed = 0
        self._shed_since_obs = 0   # backlog pressure for the autoscaler
        self._closed = False
        m = telemetry.metrics
        self._g_queue = m.gauge(
            "serve_queue_depth", "requests admitted, not yet answered")
        self._g_inflight = m.gauge(
            "serve_inflight_requests", "requests dispatched to replicas")
        self._g_replicas = m.gauge(
            "serve_replicas", "model replicas serving the queue")
        self._c_requests = m.counter(
            "serve_requests_total", "served requests by outcome",
            ("status",))
        self._c_retries = m.counter(
            "serve_batch_retries_total",
            "batches resubmitted after a replica failure")
        self._h_latency = m.histogram(
            "serve_latency_seconds", "admission-to-response latency",
            buckets=SERVE_LATENCY_BUCKETS)
        self._h_batch = m.histogram(
            "serve_batch_size", "work items coalesced per dispatched batch")
        # A local always-on copy of the latency histogram: quantile
        # gauges, SLO alerts and the serve-bench histogram export must
        # work even when the ambient hub is the null hub.
        self._latency_hist = Histogram(
            "serve_latency_seconds", "admission-to-response latency",
            buckets=SERVE_LATENCY_BUCKETS)
        self._g_p50 = m.gauge(
            "serve_latency_p50", "median serve latency (bucket estimate)")
        self._g_p95 = m.gauge(
            "serve_latency_p95", "p95 serve latency (bucket estimate)")
        self._g_p99 = m.gauge(
            "serve_latency_p99", "p99 serve latency (bucket estimate)")
        # Same counter name the trainer drains its ledger into, so the
        # profiler's per-backend compute split covers serving too.
        self._c_kernel = m.counter(
            "kernel_seconds_total",
            "replica kernel time by backend and op",
            ("backend", "op"))
        self._kernel_seconds: dict[str, float] = {}
        self._g_replicas.set(self.executor.worker_count())

    # -- admission ----------------------------------------------------------
    def route(self, volume: np.ndarray) -> str:
        """Strategy for one (C, D, H, W) volume: small enough for a
        single full-volume pass, else tiled sliding-window."""
        spatial_voxels = int(np.prod(volume.shape[1:]))
        return ("full_volume"
                if spatial_voxels <= self.config.full_volume_max_voxels
                else "sliding_window")

    def submit(self, volume: np.ndarray, request_id: str | None = None,
               priority: str = "normal") -> ServeFuture:
        """Admit one (C, D, H, W) volume; returns a future resolved by
        a later :meth:`step`.

        ``priority`` sets the request's weighted-fair share of dispatch
        slots and whether backlog shedding may reject it: when the
        unanswered-request backlog is at least ``config.shed_backlog``
        (>0) and ``priority`` is sheddable, the future comes back
        already failed with ``shed=True`` instead of joining the queue.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        if priority not in self.config.priority_weights:
            raise ValueError(
                f"unknown priority {priority!r}; configured: "
                f"{sorted(self.config.priority_weights)}")
        volume = np.asarray(volume)
        if volume.ndim != 4:
            raise ValueError(
                f"expected one (C, D, H, W) volume, got {volume.shape}")
        if request_id is None:
            request_id = f"req_{self._n_requests:06d}"
        if request_id in self._pending:
            raise ValueError(f"duplicate request id {request_id!r}")
        self._n_requests += 1
        future = ServeFuture(request_id)
        backlog = len(self._pending)
        if (self.config.shed_backlog > 0
                and priority in self.config.shed_priorities
                and backlog >= self.config.shed_backlog):
            future.shed = True
            future._error = (
                f"shed: priority={priority} backlog={backlog} >= "
                f"{self.config.shed_backlog}")
            self._n_shed += 1
            self._shed_since_obs += 1
            self._c_requests.labels(status="shed").inc()
            return future
        strategy = self.route(volume)
        weight = float(self.config.priority_weights[priority])
        now = time.monotonic()
        if strategy == "sliding_window" and self.config.scatter_gather:
            self._submit_scattered(request_id, volume, future, priority,
                                   weight, now)
        else:
            key = BatchKey(strategy=strategy, shape=tuple(volume.shape),
                           dtype=str(volume.dtype))
            self._pending[request_id] = _Pending(
                volume=volume, key=key, future=future, arrival_mono=now,
                priority=priority,
                ctx=self.request_tracer.begin(request_id))
            self.batcher.add(request_id, key, now,
                             request_id=request_id, weight=weight)
        self._g_queue.set(len(self._pending))
        return future

    def _submit_scattered(self, request_id: str, volume: np.ndarray,
                          future: ServeFuture, priority: str,
                          weight: float, now: float) -> None:
        """Scatter: decompose the request into the offline plan's patch
        chunks, each an independently schedulable work item."""
        spec = sliding_window_spec(tuple(self.config.patch_shape),
                                   float(self.config.overlap))
        patches, offsets = extract_patches(volume, spec)
        bounds = chunk_bounds(len(patches),
                              int(self.config.sw_batch_size))
        key = BatchKey(strategy="sw_chunks",
                       shape=tuple(patches.shape[1:]),
                       dtype=str(patches.dtype))
        self._pending[request_id] = _Pending(
            volume=volume, key=key, future=future, arrival_mono=now,
            priority=priority, ctx=self.request_tracer.begin(request_id),
            scattered=True, patches=patches, offsets=offsets,
            bounds=bounds)
        for ci in range(len(bounds)):
            item_id = f"{request_id}#c{ci:04d}"
            self._chunk_items[item_id] = (request_id, ci)
            self.batcher.add(item_id, key, now,
                             request_id=request_id, weight=weight)

    def pending_count(self) -> int:
        """Requests admitted but not yet answered (queued + in flight)."""
        return len(self._pending)

    def shed_count(self) -> int:
        """Requests rejected at admission under backlog pressure."""
        return self._n_shed

    def kernel_seconds(self) -> dict[str, float]:
        """Cumulative replica kernel time by ``"backend/op"`` across every
        completed batch (serve-bench reports this attribution)."""
        return dict(self._kernel_seconds)

    def request_traces(self):
        """The kept per-request timelines (tail-sampled), oldest first."""
        return self.request_tracer.traces()

    def latency_quantile(self, q: float) -> float:
        """Bucket-estimated latency quantile over every answered
        request (NaN before the first response)."""
        return self._latency_hist.quantile(q)

    def latency_histogram(self) -> list[list[float]]:
        """Cumulative ``[edge_seconds, count]`` pairs -- the fixed
        SLO bucket grid serve-bench persists."""
        cum = 0
        out = []
        for edge, n in zip(self._latency_hist.buckets,
                           self._latency_hist.bucket_counts):
            cum += n
            out.append([float(edge), int(cum)])
        return out

    # -- dispatch -----------------------------------------------------------
    def _live_items(self, items: list) -> list:
        """Drop orphans: work items whose request already finished
        (failed elsewhere, or a stale retry of a completed chunk)."""
        live = []
        for item in items:
            if item in self._chunk_items:
                rid, ci = self._chunk_items[item]
                pending = self._pending.get(rid)
                if pending is None or ci in pending.chunk_results:
                    continue
            elif item not in self._pending:
                continue
            live.append(item)
        return live

    def _dispatch(self, key: BatchKey, items: list,
                  now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        for item in items:
            rid = self._chunk_items.get(item, (item, 0))[0]
            pending = self._pending.get(rid)
            if pending is not None and pending.released_mono is None:
                pending.released_mono = now  # queue_wait ends here
        if self._submit_batch(key, items, attempt=0):
            self._h_batch.observe(len(items))

    def _submit_batch(self, key: BatchKey, items: list,
                      attempt: int, batch_id: str | None = None) -> bool:
        """Ship one replica task; returns False when every item turned
        out to be an orphan (nothing submitted)."""
        items = self._live_items(items)
        if not items:
            return False
        if batch_id is None:
            batch_id = f"batch_{self._n_batches:06d}"
            self._n_batches += 1
        if key.strategy == "sw_chunks":
            request_ids = []
            chunks, owners, indices = [], [], []
            for item in items:
                rid, ci = self._chunk_items[item]
                pending = self._pending[rid]
                start, end = pending.bounds[ci]
                chunks.append(pending.patches[start:end])
                owners.append(rid)
                indices.append(ci)
                if rid not in request_ids:
                    request_ids.append(rid)
            task = {"strategy": "sw_chunks", "chunks": chunks,
                    "chunk_requests": owners, "chunk_indices": indices}
        else:
            request_ids = list(items)
            volumes = np.stack(
                [self._pending[rid].volume for rid in request_ids])
            task = {"volumes": volumes, "strategy": key.strategy}
            if key.strategy == "sliding_window":
                task["patch_shape"] = tuple(self.config.patch_shape)
                task["overlap"] = float(self.config.overlap)
                task["sw_batch_size"] = int(self.config.sw_batch_size)
        # Trace-context propagation: the contexts ride the task dict
        # over the existing pickle path and are re-attached by the
        # replica's worker-side span.  Retries resubmit the same
        # contexts (they live in _Pending), keeping one trace_id per
        # request across attempts.
        contexts = {
            rid: self._pending[rid].ctx.to_dict()
            for rid in request_ids
            if getattr(self._pending.get(rid), "ctx", None) is not None
        }
        if contexts and self.tracing.enabled:
            task["trace"] = {"batch_id": batch_id, "attempt": int(attempt),
                             "contexts": contexts}
        self._inflight[batch_id] = _Inflight(
            key=key, items=list(items), request_ids=request_ids,
            attempt=attempt)
        self.executor.submit(batch_id, task, attempt=attempt)
        return True

    def _retry_batch(self, batch_id: str, batch: _Inflight,
                     reason: str) -> None:
        """Resubmit a failed task -- chunk tasks re-run *only their own
        chunks* -- or fail the involved requests when the retry budget
        is spent."""
        self._inflight.pop(batch_id, None)
        if batch.attempt + 1 <= self.config.max_retries:
            self._c_retries.inc()
            self._submit_batch(batch.key, batch.items,
                               attempt=batch.attempt + 1,
                               batch_id=batch_id)
            return
        for rid in batch.request_ids:
            self._fail_request(rid, batch, batch_id, reason)

    def _fail_request(self, rid: str, batch: _Inflight, batch_id: str,
                      reason: str) -> None:
        pending = self._pending.pop(rid, None)
        if pending is None:
            return
        self._drop_chunk_items(rid)
        pending.future._error = reason
        self._c_requests.labels(status="failed").inc()
        if pending.ctx is not None:
            # error traces are always kept by the tail sampler
            self.request_tracer.complete(
                pending.ctx, rid,
                arrival=pending.arrival_mono,
                released=pending.released_mono,
                started=pending.started_mono or batch.started_mono,
                completed=time.monotonic(),
                attempt=max(pending.attempt_max, batch.attempt),
                strategy=("sliding_window" if pending.scattered
                          else batch.key.strategy),
                batch_id=batch_id, batch_size=len(batch.items),
                replica=batch.worker, error=reason,
                priority=pending.priority,
                chunk_spans=pending.chunk_spans or None)

    def _drop_chunk_items(self, rid: str) -> None:
        """Forget the scatter registry entries of a finished request --
        any of its items still in the batcher or in flight become
        orphans that _live_items filters out."""
        for item in [i for i, (r, _) in self._chunk_items.items()
                     if r == rid]:
            del self._chunk_items[item]

    # -- the driver loop ----------------------------------------------------
    def step(self, now: float | None = None) -> int:
        """Advance the control loop once; returns messages processed.

        Non-blocking: drains every queued worker message, fails over
        dead replicas, releases due micro-batches under dispatch
        credits, heals the pool to the target size, then lets the
        autoscaler adjust that target.
        """
        if self._closed:
            return 0
        now = time.monotonic() if now is None else now
        processed = 0
        while True:
            msg = self.executor.poll_message()
            if msg is None:
                break
            self._handle(msg)
            processed += 1
        self._fail_over_dead(now)
        # dispatch credits: keep at most max_inflight_per_replica tasks
        # per live replica on the shared FIFO task queue; everything
        # else waits in the batcher, where release order is weighted-fair
        credits = (self.executor.worker_count()
                   * self.config.max_inflight_per_replica
                   - len(self._inflight))
        if credits > 0:
            for key, items in self.batcher.due(now, limit=credits):
                self._dispatch(key, items, now=now)
        self._autoscale(now)
        inflight_requests = len(
            {rid for b in self._inflight.values()
             for rid in b.request_ids})
        # backlog is *unanswered requests*, not the batcher's holding
        # pen: saturation shows up as admitted-but-unanswered work,
        # whether it is waiting fairly here or on the shared task queue
        self._g_queue.set(len(self._pending))
        self._g_inflight.set(inflight_requests)
        self._g_replicas.set(self.executor.worker_count())
        live = getattr(self.telemetry, "live", None)
        quantiles = {}
        if self._latency_hist.count:
            quantiles = {"serve_latency_p50": self._latency_hist.quantile(.5),
                         "serve_latency_p95": self._latency_hist.quantile(.95),
                         "serve_latency_p99": self._latency_hist.quantile(.99)}
            self._g_p50.set(quantiles["serve_latency_p50"])
            self._g_p95.set(quantiles["serve_latency_p95"])
            self._g_p99.set(quantiles["serve_latency_p99"])
        if live is not None:
            live.set_value("serve_queue_depth", float(len(self._pending)))
            live.set_value("serve_inflight", float(inflight_requests))
            live.set_value("serve_replicas",
                           float(self.executor.worker_count()))
            live.set_value("serve_shed_total", float(self._n_shed))
            for name, value in quantiles.items():
                live.set_value(name, value)  # feeds serve_p99_slo alerts
        self.telemetry.live_tick()
        return processed

    def drain(self, timeout_s: float = 60.0) -> None:
        """Block until every admitted request has a response (or raise
        after ``timeout_s`` with requests still unanswered)."""
        deadline = time.monotonic() + timeout_s
        while self._pending:
            if self.step() > 0:
                continue
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{len(self._pending)} requests still pending after "
                    f"{timeout_s:g}s")
            # idle: block briefly for the next message instead of
            # spinning, bounded so deadline flushes stay on time
            wait = self.batcher.next_deadline()
            block = 0.05 if wait is None else max(
                0.001, min(0.05, wait - time.monotonic()))
            try:
                self._handle(self.executor.next_message(timeout=block))
            except TimeoutError:
                pass
            except RuntimeError:
                # every replica died at once; fail-over below respawns
                self._fail_over_dead(time.monotonic())

    # -- message handling ---------------------------------------------------
    def _handle(self, msg) -> None:
        kind = msg[0]
        live = getattr(self.telemetry, "live", None)
        if kind == "heartbeat":
            if live is not None:
                live.on_heartbeat(msg[1])
        elif kind == "telemetry":
            self.telemetry.ingest_worker_frame(msg[1])
        elif kind == "retired":
            pass  # an autoscaler-requested drain completing
        elif kind == "started":
            _, batch_id, worker_id, attempt = msg
            batch = self._inflight.get(batch_id)
            if batch is not None and batch.attempt == attempt:
                batch.worker = worker_id
                batch.started_mono = time.monotonic()  # batch_wait ends
        elif kind == "report":
            pass  # replicas never call the reporter
        elif kind == "done":
            _, batch_id, attempt, final, _stopped, stats = msg
            batch = self._inflight.get(batch_id)
            if batch is None or batch.attempt != attempt:
                return  # stale: already failed over to a new attempt
            self._inflight.pop(batch_id)
            self._complete(batch_id, batch, final, stats)
        elif kind == "error":
            _, batch_id, attempt, message, _stats = msg
            batch = self._inflight.get(batch_id)
            if batch is None or batch.attempt != attempt:
                return
            self._retry_batch(batch_id, batch, message)

    def _drain_kernel(self, final: dict) -> dict:
        """Fold the task's per-{backend,op} kernel attribution into the
        server's cumulative ledger and counter."""
        kernel = {k: float(v)
                  for k, v in (final.get("kernel_seconds") or {}).items()}
        for key, seconds in kernel.items():
            backend, _, op = key.partition("/")
            self._c_kernel.labels(backend=backend, op=op).inc(seconds)
            self._kernel_seconds[key] = (
                self._kernel_seconds.get(key, 0.0) + seconds)
        return kernel

    def _complete(self, batch_id: str, batch: _Inflight, final: dict,
                  stats) -> None:
        done = time.monotonic()   # the result message reached the driver
        worker = batch.worker
        if worker is None and stats:
            worker = stats.get("worker_id")
        replica_pid = stats.get("pid") if stats else None
        kernel = self._drain_kernel(final)
        if batch.key.strategy == "sw_chunks":
            self._gather_chunks(batch_id, batch, final, done, worker,
                                replica_pid)
            return
        prediction = np.asarray(final["prediction"])
        for i, rid in enumerate(batch.request_ids):
            pending = self._pending.pop(rid, None)
            if pending is None:
                continue
            completed = time.monotonic()
            trace = self.request_tracer.complete(
                pending.ctx, rid,
                arrival=pending.arrival_mono,
                released=pending.released_mono,
                started=batch.started_mono,
                done=done, completed=completed,
                # the request waits on the whole batch's compute window
                compute_s=float(final["seconds"]),
                attempt=batch.attempt, strategy=final["strategy"],
                batch_id=batch_id, batch_size=len(batch.request_ids),
                replica=worker, replica_pid=replica_pid,
                kernel_seconds=kernel, priority=pending.priority)
            self._resolve(pending, trace, InferenceResponse(
                request_id=rid,
                prediction=prediction[i],
                strategy=final["strategy"],
                latency_s=trace.latency_s,
                batch_size=len(batch.request_ids),
                replica=worker,
                attempt=batch.attempt,
                model_seconds=float(final["seconds"]),
                checkpoint_epoch=final.get("checkpoint_epoch"),
                priority=pending.priority,
            ))

    def _gather_chunks(self, batch_id: str, batch: _Inflight, final: dict,
                       done: float, worker, replica_pid) -> None:
        """Gather: buffer this task's chunk predictions under their
        owning requests; a request whose last chunk just landed is
        stitched (canonical order -- bit-identity however the chunks
        interleaved across replicas and retries) and resolved."""
        predictions = final["predictions"]
        chunk_seconds = [float(s) for s in final["chunk_seconds"]]
        # reconstruct per-chunk spans on the driver clock: chunks ran
        # back-to-back inside the replica's compute window ending ~done
        span_t = (batch.started_mono
                  if batch.started_mono is not None
                  else done - sum(chunk_seconds))
        finished: list[str] = []
        for i, item in enumerate(batch.items):
            start, span_t = span_t, span_t + chunk_seconds[i]
            owner = self._chunk_items.get(item)
            if owner is None:
                continue  # request already failed elsewhere
            rid, ci = owner
            pending = self._pending.get(rid)
            if pending is None or ci in pending.chunk_results:
                continue
            pending.chunk_results[ci] = np.asarray(predictions[i])
            pending.chunk_seconds[ci] = chunk_seconds[i]
            pending.chunk_spans.append(
                {"chunk": ci, "start": start, "end": span_t,
                 "replica": worker, "pid": replica_pid,
                 "attempt": batch.attempt})
            pending.attempt_max = max(pending.attempt_max, batch.attempt)
            if (pending.started_mono is None
                    or (batch.started_mono is not None
                        and batch.started_mono < pending.started_mono)):
                pending.started_mono = batch.started_mono
            pending.done_mono = done
            if len(pending.chunk_results) == len(pending.bounds):
                finished.append(rid)
        for rid in finished:
            pending = self._pending.pop(rid)
            self._drop_chunk_items(rid)
            stitched = stitch_chunks(pending.chunk_results,
                                     pending.offsets,
                                     pending.volume.shape[1:])
            completed = time.monotonic()
            compute_s = float(sum(pending.chunk_seconds.values()))
            trace = self.request_tracer.complete(
                pending.ctx, rid,
                arrival=pending.arrival_mono,
                released=pending.released_mono,
                started=pending.started_mono,
                done=pending.done_mono, completed=completed,
                compute_s=compute_s,
                attempt=pending.attempt_max, strategy="sliding_window",
                batch_id=batch_id, batch_size=len(batch.items),
                replica=worker, replica_pid=replica_pid,
                priority=pending.priority,
                chunk_spans=pending.chunk_spans)
            self._resolve(pending, trace, InferenceResponse(
                request_id=rid,
                prediction=stitched,
                strategy="sliding_window",
                latency_s=trace.latency_s,
                batch_size=len(batch.items),
                replica=worker,
                attempt=pending.attempt_max,
                model_seconds=compute_s,
                checkpoint_epoch=final.get("checkpoint_epoch"),
                priority=pending.priority,
                chunks=len(pending.bounds),
                chunk_replicas=list(trace.chunk_replicas),
            ))

    def _resolve(self, pending: _Pending, trace,
                 response: InferenceResponse) -> None:
        phases = trace.phase_durations()
        # latency from the trace so the five phase durations sum to it
        # exactly (same clock, same endpoints)
        response.trace_id = trace.trace_id
        response.queue_wait_s = phases["queue_wait"]
        response.batch_wait_s = phases["batch_wait"]
        response.dispatch_s = phases["dispatch"]
        response.compute_s = phases["compute"]
        response.stitch_s = phases["stitch"]
        pending.future._response = response
        self._latency_hist.observe(response.latency_s)
        self._h_latency.observe(
            response.latency_s,
            exemplar={"trace_id": trace.trace_id,
                      "request_id": response.request_id})
        self._c_requests.labels(status="completed").inc()

    # -- failure and scale --------------------------------------------------
    def _fail_over_dead(self, now: float) -> None:
        """Retry (not drop) the in-flight tasks of replicas whose
        process exited -- a dead replica re-runs only its own chunk
        tasks, never whole requests -- then heal the pool back to the
        target size."""
        live = getattr(self.telemetry, "live", None)
        for wid in self.executor.dead_workers():
            if wid in self._handled_dead:
                continue
            self._handled_dead.add(wid)
            if live is not None:
                live.on_worker_dead(wid)
            for batch_id, batch in list(self._inflight.items()):
                if batch.worker == wid:
                    self._retry_batch(
                        batch_id, batch,
                        f"replica {wid} died mid-batch")
        while (not self._closed
               and self.executor.worker_count() < self._target_replicas):
            self.executor.add_worker()

    def _autoscale(self, now: float) -> None:
        if self.autoscaler is None:
            return
        # shed admissions are demand the queue never saw -- count them
        # as backlog pressure so shedding cannot mask the scale-up signal
        shed_pressure = self._shed_since_obs
        self._shed_since_obs = 0
        decision = self.autoscaler.observe(
            queue_depth=len(self._pending) + shed_pressure,
            inflight=len(self._inflight),
            replicas=self._target_replicas,
            now=now)
        if decision == "scale_up":
            self._target_replicas += 1
            self.executor.add_worker()
        elif decision == "retire":
            wid = self._retire_candidate()
            if wid is not None:
                self._target_replicas -= 1
                self.executor.retire_worker(wid)

    def _retire_candidate(self) -> int | None:
        """Highest-id live replica with no known in-flight batch --
        retire drains safely anyway, idle just exits sooner."""
        busy = {b.worker for b in self._inflight.values()}
        alive = self.executor.alive_workers()
        for wid in sorted(alive, reverse=True):
            if wid not in busy:
                return wid
        return alive[-1] if alive else None

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.executor.shutdown()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
