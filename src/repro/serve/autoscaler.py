"""Telemetry-driven replica autoscaling: sustained backlog up, idle down.

Pure decision logic, deliberately clock- and pool-free: the server feeds
it one observation per step (queue depth = *unanswered* requests, the
``serve_queue_depth`` gauge; in-flight batches; current replica count;
a monotonic timestamp) and maps the returned decision onto
:meth:`repro.execpool.executor.ProcessPoolTrialExecutor.add_worker` /
:meth:`~repro.execpool.executor.ProcessPoolTrialExecutor.retire_worker`.

Both directions use streaks (consecutive observations), mirroring the
``for N windows`` hysteresis of :mod:`repro.telemetry.alerts`, so one
bursty arrival never flaps the pool; a cooldown after every action lets
the new capacity drain the queue before the next decision.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    min_replicas: int = 1
    max_replicas: int = 4
    # backlog: unanswered requests per replica that count as "falling
    # behind" (each replica serves one batch at a time)
    backlog_per_replica: float = 2.0
    scale_up_streak: int = 3     # consecutive backlog observations
    idle_streak: int = 10        # consecutive fully-idle observations
    cooldown_s: float = 2.0      # min seconds between actions

    def __post_init__(self):
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.backlog_per_replica <= 0:
            raise ValueError("backlog_per_replica must be > 0")
        if self.scale_up_streak < 1 or self.idle_streak < 1:
            raise ValueError("streaks must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")


class Autoscaler:
    """Folds queue observations into scale_up / retire / hold decisions.

    >>> a = Autoscaler(AutoscalerConfig(scale_up_streak=2))
    >>> a.observe(queue_depth=9, inflight=1, replicas=1, now=0.0)
    'hold'
    >>> a.observe(queue_depth=9, inflight=1, replicas=1, now=1.0)
    'scale_up'
    """

    def __init__(self, config: AutoscalerConfig | None = None):
        self.config = config or AutoscalerConfig()
        self._backlog_streak = 0
        self._idle_streak = 0
        self._last_action_mono: float | None = None

    def observe(self, queue_depth: int, inflight: int, replicas: int,
                now: float) -> str:
        """One observation in, one of ``"scale_up" | "retire" | "hold"``
        out.  ``now`` is monotonic and only compared to itself (cooldown
        arithmetic), never to wall time.
        """
        cfg = self.config
        backlog = queue_depth > cfg.backlog_per_replica * replicas
        idle = queue_depth == 0 and inflight == 0
        # streaks keep counting through the cooldown so sustained
        # pressure acts the moment the cooldown expires
        self._backlog_streak = self._backlog_streak + 1 if backlog else 0
        self._idle_streak = self._idle_streak + 1 if idle else 0
        if (self._last_action_mono is not None
                and now - self._last_action_mono < cfg.cooldown_s):
            return "hold"
        if (self._backlog_streak >= cfg.scale_up_streak
                and replicas < cfg.max_replicas):
            self._last_action_mono = now
            self._backlog_streak = 0
            return "scale_up"
        if (self._idle_streak >= cfg.idle_streak
                and replicas > cfg.min_replicas):
            self._last_action_mono = now
            self._idle_streak = 0
            return "retire"
        return "hold"
