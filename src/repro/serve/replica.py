"""Worker-side model replica: checkpoint-loaded, batch-serving trainable.

A replica is what :class:`repro.execpool.executor.ProcessPoolTrialExecutor`
builds *inside each worker process* from :func:`replica_factory`: the
model is constructed once per worker, the best-trial checkpoint is
restored into it through the same bit-exact ``.npz`` round-trip training
uses (:func:`repro.core.checkpoint.load_checkpoint`), and the returned
callable then serves micro-batches shipped over the task queue for the
lifetime of the process.

Bit-identity contract
---------------------
Replicas answer through :func:`repro.core.inference.full_volume_inference`
/ :func:`~repro.core.inference.sliding_window_inference`, whose inner
loop forwards **one sample per ``model.predict`` call** (full volume)
or **one patch chunk per call** (sliding window).  On this BLAS a
batched matmul is *not* bitwise-identical to a differently-grouped
equivalent, so regrouping requests or patches into other forward-pass
shapes would make served predictions diverge from offline inference at
the last ulp.  Keeping the offline grouping makes a served prediction
bit-identical to a solo offline call on the same volume, whatever batch
or chunk task the request happened to ride in -- micro-batching
therefore amortises the *dispatch* cost (queue hand-off, volume
pickling, Python call overhead), not the GEMM, which is exactly how the
serving capacity model prices it
(:class:`repro.perf.deployment.ServingWorkload`).

Scatter--gather tasks (``strategy="sw_chunks"``) carry patch chunks
from *several* requests: the replica runs one ``model.predict`` per
chunk -- each chunk being exactly one of offline
:func:`~repro.core.inference.chunk_bounds`'s invocations -- and ships
the per-chunk predictions back for **driver-side** stitching, so
partial results can come from different replicas and still reassemble
bit-identically.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.checkpoint import load_checkpoint
from ..core.inference import full_volume_inference, sliding_window_inference
from ..nn.kernels import consume_kernel_seconds

__all__ = ["replica_factory", "STRATEGIES"]

STRATEGIES = ("full_volume", "sliding_window", "sw_chunks")


def replica_factory(checkpoint: str, model_builder, model_kwargs=None,
                    compute_dtype=None):
    """Build one serving replica (runs in the worker at startup).

    ``model_builder(**model_kwargs)`` must be picklable by reference
    (a class or module-level function, e.g. :class:`repro.nn.UNet3D`);
    the heavyweight weights never cross the process boundary -- each
    worker reads the checkpoint file itself.  ``compute_dtype``
    installs the worker's kernel dtype policy (float32 serving mode)
    *before* the model is built, so weights load straight into the
    serving precision.

    Returns the ``(config, reporter) -> dict`` trainable the pool runs
    per task.  A task config is one micro-batch::

        {"volumes": (N, C, D, H, W) array, "strategy": "full_volume",
         "patch_shape": ..., "overlap": ..., "sw_batch_size": ...}

    or one scatter--gather chunk task::

        {"strategy": "sw_chunks", "chunks": [(n_i, C, *patch) arrays],
         "chunk_requests": [request_id per chunk],
         "chunk_indices": [chunk index within its request]}
    """
    if compute_dtype is not None:
        from ..nn.dtypes import set_compute_dtype

        set_compute_dtype(compute_dtype)
    model = model_builder(**dict(model_kwargs or {}))
    meta = load_checkpoint(checkpoint, model)

    def serve_batch(config, reporter):
        from ..telemetry import get_hub

        strategy = config.get("strategy", "full_volume")
        # Trace-context re-attachment: the driver ships the per-request
        # contexts inside the task dict; recording the compute span on
        # this process's hub (streamed back as a telemetry frame) is
        # what parents replica work -- with its real pid -- into the
        # per-request timelines of the merged Chrome trace.
        trace = config.get("trace") or {}
        contexts = trace.get("contexts") or {}
        hub = get_hub()
        span_attrs = dict(
            category="serve",
            batch_id=str(trace.get("batch_id", "")),
            attempt=int(trace.get("attempt", 0)),
            strategy=strategy,
            request_ids=sorted(contexts),
            trace_ids=sorted({str(c.get("trace_id", ""))
                              for c in contexts.values()}))
        if strategy == "sw_chunks":
            final = _serve_chunks(model, config, contexts, hub,
                                  span_attrs)
        else:
            final = _serve_volumes(model, config, strategy, hub,
                                   span_attrs)
        # Drain the per-{backend,op} kernel-seconds ledger every batch:
        # long-lived replicas must not accumulate it unboundedly (the
        # trainer drains it per step; nothing else in this process
        # does), and the attribution rides back with the result.
        kernel_seconds = {
            f"{backend}/{op}": seconds
            for (backend, op), seconds in consume_kernel_seconds().items()
        }
        # Per-op children of the compute span (ending now, PR 8 ledger)
        for key, seconds in kernel_seconds.items():
            hub.tracer.add_completed(
                f"kernel:{key}", float(seconds), category="kernel",
                batch_id=str(trace.get("batch_id", "")))
        final["strategy"] = strategy
        final["checkpoint_epoch"] = meta.get("epoch")
        final["kernel_seconds"] = kernel_seconds
        return final

    return serve_batch


def _serve_volumes(model, config, strategy, hub, span_attrs) -> dict:
    """Whole-volume task: stacked (N, C, D, H, W) batch, per-sample
    (full volume) or per-chunk (sliding window) loop inside."""
    volumes = np.asarray(config["volumes"])
    if volumes.ndim != 5:
        raise ValueError(
            f"expected a (N, C, D, H, W) batch, got {volumes.shape}")
    with hub.tracer.span("replica_compute", **span_attrs):
        if strategy == "full_volume":
            res = full_volume_inference(model, volumes)
        elif strategy == "sliding_window":
            res = sliding_window_inference(
                model, volumes,
                patch_shape=tuple(config["patch_shape"]),
                overlap=float(config.get("overlap", 0.5)),
                batch_size=int(config.get("sw_batch_size", 4)),
            )
        else:
            raise ValueError(f"unknown inference strategy {strategy!r}")
    return {
        "prediction": res.prediction,
        "seconds": res.seconds,
        "forward_passes": res.forward_passes,
        "model_invocations": res.model_invocations,
    }


def _serve_chunks(model, config, contexts, hub, span_attrs) -> dict:
    """Scatter--gather task: one ``model.predict`` per patch chunk
    (offline grouping preserved -- bit-identity), predictions shipped
    back per chunk for driver-side stitching.  Each chunk gets its own
    worker-side span carrying the owning request's trace id, so the
    merged Chrome trace shows the request fanned across worker pids."""
    chunks = [np.asarray(c) for c in config["chunks"]]
    owners = [str(r) for r in config.get("chunk_requests",
                                         [""] * len(chunks))]
    indices = [int(i) for i in config.get("chunk_indices",
                                          range(len(chunks)))]
    predictions = []
    chunk_seconds = []
    passes = 0
    with hub.tracer.span("replica_compute", **span_attrs):
        for chunk, owner, index in zip(chunks, owners, indices):
            if chunk.ndim != 5:
                raise ValueError(
                    f"expected a (n, C, pd, ph, pw) chunk, got "
                    f"{chunk.shape}")
            ctx = contexts.get(owner) or {}
            t0 = time.perf_counter()
            with hub.tracer.span(
                    "sw_chunk", category="serve", request_id=owner,
                    chunk=index,
                    trace_id=str(ctx.get("trace_id", ""))):
                pred = model.predict(chunk)
            predictions.append(pred)
            chunk_seconds.append(time.perf_counter() - t0)
            passes += int(chunk.shape[0])
    return {
        "predictions": predictions,
        "chunk_seconds": chunk_seconds,
        "seconds": float(sum(chunk_seconds)),
        "forward_passes": passes,
        "model_invocations": len(chunks),
    }
