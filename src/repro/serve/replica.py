"""Worker-side model replica: checkpoint-loaded, batch-serving trainable.

A replica is what :class:`repro.execpool.executor.ProcessPoolTrialExecutor`
builds *inside each worker process* from :func:`replica_factory`: the
model is constructed once per worker, the best-trial checkpoint is
restored into it through the same bit-exact ``.npz`` round-trip training
uses (:func:`repro.core.checkpoint.load_checkpoint`), and the returned
callable then serves micro-batches shipped over the task queue for the
lifetime of the process.

Bit-identity contract
---------------------
Replicas answer through :func:`repro.core.inference.full_volume_inference`
/ :func:`~repro.core.inference.sliding_window_inference`, whose inner
loop forwards **one sample per ``model.predict`` call**.  On this BLAS a
batched matmul is *not* bitwise-identical to the per-row equivalent, so
stacking k requests into one forward pass would make served predictions
diverge from offline inference at the last ulp.  Keeping the per-sample
loop makes a served prediction bit-identical to a solo
``full_volume_inference`` call on the same volume, whatever batch the
request happened to ride in -- micro-batching therefore amortises the
*dispatch* cost (queue hand-off, volume pickling, Python call overhead),
not the GEMM, which is exactly how the serving capacity model prices it
(:class:`repro.perf.deployment.ServingWorkload`).
"""

from __future__ import annotations

import numpy as np

from ..core.checkpoint import load_checkpoint
from ..core.inference import full_volume_inference, sliding_window_inference
from ..nn.kernels import consume_kernel_seconds

__all__ = ["replica_factory", "STRATEGIES"]

STRATEGIES = ("full_volume", "sliding_window")


def replica_factory(checkpoint: str, model_builder, model_kwargs=None):
    """Build one serving replica (runs in the worker at startup).

    ``model_builder(**model_kwargs)`` must be picklable by reference
    (a class or module-level function, e.g. :class:`repro.nn.UNet3D`);
    the heavyweight weights never cross the process boundary -- each
    worker reads the checkpoint file itself.

    Returns the ``(config, reporter) -> dict`` trainable the pool runs
    per task.  A task config is one micro-batch::

        {"volumes": (N, C, D, H, W) array, "strategy": "full_volume",
         "patch_shape": ..., "overlap": ..., "sw_batch_size": ...}
    """
    model = model_builder(**dict(model_kwargs or {}))
    meta = load_checkpoint(checkpoint, model)

    def serve_batch(config, reporter):
        from ..telemetry import get_hub

        volumes = np.asarray(config["volumes"])
        if volumes.ndim != 5:
            raise ValueError(
                f"expected a (N, C, D, H, W) batch, got {volumes.shape}")
        strategy = config.get("strategy", "full_volume")
        # Trace-context re-attachment: the driver ships the per-request
        # contexts inside the task dict; recording the compute span on
        # this process's hub (streamed back as a telemetry frame) is
        # what parents replica work -- with its real pid -- into the
        # per-request timelines of the merged Chrome trace.
        trace = config.get("trace") or {}
        contexts = trace.get("contexts") or {}
        hub = get_hub()
        with hub.tracer.span(
                "replica_compute", category="serve",
                batch_id=str(trace.get("batch_id", "")),
                attempt=int(trace.get("attempt", 0)),
                strategy=strategy,
                request_ids=sorted(contexts),
                trace_ids=sorted({str(c.get("trace_id", ""))
                                  for c in contexts.values()})):
            if strategy == "full_volume":
                res = full_volume_inference(model, volumes)
            elif strategy == "sliding_window":
                res = sliding_window_inference(
                    model, volumes,
                    patch_shape=tuple(config["patch_shape"]),
                    overlap=float(config.get("overlap", 0.5)),
                    batch_size=int(config.get("sw_batch_size", 4)),
                )
            else:
                raise ValueError(
                    f"unknown inference strategy {strategy!r}")
        # Drain the per-{backend,op} kernel-seconds ledger every batch:
        # long-lived replicas must not accumulate it unboundedly (the
        # trainer drains it per step; nothing else in this process
        # does), and the attribution rides back with the result.
        kernel_seconds = {
            f"{backend}/{op}": seconds
            for (backend, op), seconds in consume_kernel_seconds().items()
        }
        # Per-op children of the compute span (ending now, PR 8 ledger)
        for key, seconds in kernel_seconds.items():
            hub.tracer.add_completed(
                f"kernel:{key}", float(seconds), category="kernel",
                batch_id=str(trace.get("batch_id", "")))
        return {
            "prediction": res.prediction,
            "seconds": res.seconds,
            "forward_passes": res.forward_passes,
            "model_invocations": res.model_invocations,
            "strategy": strategy,
            "checkpoint_epoch": meta.get("epoch"),
            "kernel_seconds": kernel_seconds,
        }

    return serve_batch
