"""Dynamic micro-batching with weighted-fair, priority-aware release.

The admission queue groups compatible work items (same inference
strategy, per-sample shape and dtype -- a batch must stack into one
array, or share one replica task) and releases a group as soon as it
fills to ``max_batch`` *or* its oldest item has waited ``max_delay_s``.
Batching amortises the per-invocation dispatch cost (queue hand-off,
pickling across the process boundary, one task per batch); the
per-sample forward time itself is batch-invariant because replicas run
the bit-identical per-sample/per-chunk loop (:mod:`repro.serve.replica`).

Scatter--gather serving (ISSUE 10) turns one sliding-window request
into many patch-chunk work items, so release order is no longer plain
FIFO: items carry a ``request_id`` and a priority ``weight``, and the
batcher interleaves items of *different* requests by **stride
scheduling** (weighted fair queuing): each request has a virtual
``pass`` value advanced by ``1 / weight`` per released item, and the
next slot always goes to the request with the smallest pass.  A newly
arrived request starts at the scheduler's current virtual clock, so a
small request admitted behind a 100-chunk volume is released after at
most ~one batch of the large request's chunks instead of all of them
-- the head-of-line-blocking fix measured in ``BENCH_serving.json``.
Items of the *same* request always release in arrival (chunk) order,
and with one item per request (classic full-volume traffic) the
schedule degenerates to exact FIFO.

``due(now, limit=...)`` lets the server cap how many batches leave per
step (dispatch credits): whatever is not released keeps accumulating
here -- where arrival order and fairness state live -- instead of
head-of-line-blocking the replicas' shared FIFO task queue.

Pure logic over caller-supplied monotonic timestamps -- no clock reads,
no threads -- so tests drive it with synthetic time exactly like the
health board in :mod:`repro.telemetry.live`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["BatchKey", "MicroBatcher"]


@dataclass(frozen=True)
class BatchKey:
    """What must match for work items to share a batch."""

    strategy: str            # "full_volume" | "sliding_window" | "sw_chunk"
    shape: tuple             # per-sample (C, D, H, W) / per-patch shape
    dtype: str


@dataclass
class _Item:
    item_id: str
    arrival: float
    request_id: str
    weight: float


class MicroBatcher:
    """Deadline/size-triggered coalescing with weighted-fair ordering.

    >>> mb = MicroBatcher(max_batch=4, max_delay_s=0.01)
    >>> mb.add("r0", key, now=0.0)
    >>> mb.due(now=0.005)          # neither full nor expired
    []
    >>> mb.due(now=0.02)           # deadline flush with a partial batch
    [(key, ['r0'])]
    """

    def __init__(self, max_batch: int = 4, max_delay_s: float = 0.01):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        # key -> [_Item], arrival order preserved within the group
        self._groups: dict[BatchKey, list[_Item]] = {}
        # weighted-fair state, global across groups: one virtual pass
        # per request with pending items, advanced 1/weight per release
        self._pass: dict[str, float] = {}
        self._vclock = 0.0

    def add(self, item_id: str, key: BatchKey, now: float,
            request_id: str | None = None, weight: float = 1.0) -> None:
        """Admit one work item.  ``request_id`` groups items for the
        fair scheduler (chunks of one request share it; default: the
        item is its own request); ``weight`` scales its share of
        release slots (priority weight, higher = more slots)."""
        if weight <= 0:
            raise ValueError("weight must be > 0")
        rid = item_id if request_id is None else request_id
        # a request joins (or rejoins) at the current virtual clock so
        # it neither starves nor erases credit it already consumed
        if rid not in self._pass:
            self._pass[rid] = self._vclock
        self._groups.setdefault(key, []).append(
            _Item(item_id, float(now), rid, float(weight)))

    def depth(self) -> int:
        """Work items admitted but not yet released to a replica."""
        return sum(len(g) for g in self._groups.values())

    def pending_requests(self) -> int:
        """Distinct requests with at least one item still held here."""
        return len({it.request_id
                    for g in self._groups.values() for it in g})

    def _oldest(self, group: list[_Item]) -> float:
        return min(it.arrival for it in group)

    def next_deadline(self) -> float | None:
        """Monotonic time of the earliest pending release.

        A group already holding a *full* batch is due **now**: its
        entry is the (past) arrival of its oldest item, so a caller
        sleeping until the returned instant wakes immediately instead
        of stalling a releasable batch for up to ``max_delay_s``.
        """
        deadlines = []
        for group in self._groups.values():
            if not group:
                continue
            oldest = self._oldest(group)
            deadlines.append(oldest if len(group) >= self.max_batch
                             else oldest + self.max_delay_s)
        return min(deadlines) if deadlines else None

    # -- weighted-fair selection --------------------------------------------
    def _take_fair(self, key: BatchKey, count: int) -> list[str]:
        """Remove and return up to ``count`` item ids from ``key``'s
        group in stride-scheduled order: the next slot goes to the
        pending request with the smallest virtual pass (ties: earliest
        head-item arrival, then request id), whose pass then advances
        by ``1 / weight``.  Items of one request leave in arrival
        order."""
        group = self._groups[key]
        heads: dict[str, list[_Item]] = {}
        for it in group:
            heads.setdefault(it.request_id, []).append(it)
        taken: list[str] = []
        for _ in range(min(count, len(group))):
            rid = min(
                heads,
                key=lambda r: (self._pass[r], heads[r][0].arrival, r))
            item = heads[rid].pop(0)
            if not heads[rid]:
                del heads[rid]
            self._vclock = max(self._vclock, self._pass[rid])
            self._pass[rid] += 1.0 / item.weight
            taken.append(item.item_id)
        taken_set = set(taken)
        self._groups[key] = [it for it in group
                             if it.item_id not in taken_set]
        return taken

    def _prune_pass(self) -> None:
        """Drop fair-scheduler state for requests with nothing pending
        (a request resubmitting later re-enters at the virtual clock)."""
        live = {it.request_id
                for g in self._groups.values() for it in g}
        for rid in [r for r in self._pass if r not in live]:
            del self._pass[rid]

    def due(self, now: float,
            limit: int | None = None) -> list[tuple[BatchKey, list[str]]]:
        """Release batches that are full or past their deadline, at
        most ``limit`` batches (None = all).

        Eligibility is by deadline: a full batch is due at its oldest
        item's *arrival*, a partial one at ``oldest + max_delay_s``
        (the per-request latency bound the capacity model in
        :mod:`repro.perf.deployment` assumes).  *Order* among eligible
        groups is by the weighted-fair scheduler, not FIFO: the next
        batch comes from the group holding the request with the
        smallest virtual pass, so a fresh small request's group
        outranks the chunk group of a large request that has already
        consumed release slots -- cross-group head-of-line blocking is
        bounded by ~one batch, not by the large request's backlog.
        Whatever ``limit`` leaves behind stays here, still
        accumulating, and is re-offered next call.
        """
        released: list[tuple[BatchKey, list[str]]] = []
        while limit is None or len(released) < limit:
            best_key = None
            best_rank = (math.inf, math.inf, "")
            for key, group in self._groups.items():
                if not group:
                    continue
                oldest = self._oldest(group)
                due_at = (oldest if len(group) >= self.max_batch
                          else oldest + self.max_delay_s)
                if due_at > now:
                    continue
                rank = min((self._pass[it.request_id], it.arrival,
                            it.request_id) for it in group)
                if rank < best_rank:
                    best_rank = rank
                    best_key = key
            if best_key is None:
                break
            released.append(
                (best_key, self._take_fair(best_key, self.max_batch)))
            if not self._groups[best_key]:
                del self._groups[best_key]
        self._prune_pass()
        return released

    def flush(self) -> list[tuple[BatchKey, list[str]]]:
        """Release everything pending (server drain/shutdown), in fair
        order, split at ``max_batch``."""
        released: list[tuple[BatchKey, list[str]]] = []
        for key in list(self._groups):
            while self._groups[key]:
                released.append(
                    (key, self._take_fair(key, self.max_batch)))
            del self._groups[key]
        self._prune_pass()
        return released
