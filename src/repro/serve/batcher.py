"""Dynamic micro-batching: coalesce requests up to a batch/deadline budget.

The admission queue groups compatible requests (same inference strategy,
per-sample shape and dtype -- a batch must stack into one array) and
releases a group as soon as it fills to ``max_batch`` *or* its oldest
request has waited ``max_delay_s``.  Batching here amortises the
per-invocation dispatch cost (queue hand-off, pickling the volume across
the process boundary, one ``model.predict`` call per request); the
per-sample forward time itself is batch-invariant because replicas run
the bit-identical per-sample loop (see :mod:`repro.serve.replica`).

Pure logic over caller-supplied monotonic timestamps -- no clock reads,
no threads -- so tests drive it with synthetic time exactly like the
health board in :mod:`repro.telemetry.live`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BatchKey", "MicroBatcher"]


@dataclass(frozen=True)
class BatchKey:
    """What must match for requests to share a batch."""

    strategy: str            # "full_volume" | "sliding_window"
    shape: tuple             # per-sample (C, D, H, W)
    dtype: str


class MicroBatcher:
    """Deadline/size-triggered request coalescing.

    >>> mb = MicroBatcher(max_batch=4, max_delay_s=0.01)
    >>> mb.add("r0", key, now=0.0)
    >>> mb.due(now=0.005)          # neither full nor expired
    []
    >>> mb.due(now=0.02)           # deadline flush with a partial batch
    [(key, ['r0'])]
    """

    def __init__(self, max_batch: int = 4, max_delay_s: float = 0.01):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        # key -> [(request_id, arrival_mono)], arrival order preserved
        self._groups: dict[BatchKey, list[tuple[str, float]]] = {}

    def add(self, request_id: str, key: BatchKey, now: float) -> None:
        self._groups.setdefault(key, []).append((request_id, float(now)))

    def depth(self) -> int:
        """Requests admitted but not yet released to a replica."""
        return sum(len(g) for g in self._groups.values())

    def next_deadline(self) -> float | None:
        """Monotonic time of the earliest pending deadline flush."""
        oldest = [g[0][1] for g in self._groups.values() if g]
        return min(oldest) + self.max_delay_s if oldest else None

    def due(self, now: float) -> list[tuple[BatchKey, list[str]]]:
        """Release every batch that is full or past its deadline.

        Full batches release immediately regardless of the deadline; a
        partial batch releases once its *oldest* member has waited
        ``max_delay_s`` (the per-request latency bound the capacity
        model in :mod:`repro.perf.deployment` assumes).
        """
        released: list[tuple[BatchKey, list[str]]] = []
        for key in list(self._groups):
            group = self._groups[key]
            while len(group) >= self.max_batch:
                take, self._groups[key] = group[: self.max_batch], \
                    group[self.max_batch:]
                group = self._groups[key]
                released.append((key, [rid for rid, _ in take]))
            if group and now - group[0][1] >= self.max_delay_s:
                released.append((key, [rid for rid, _ in group]))
                group = []
                self._groups[key] = group
            if not group:
                del self._groups[key]
        return released

    def flush(self) -> list[tuple[BatchKey, list[str]]]:
        """Release everything pending (server drain/shutdown)."""
        released = [(key, [rid for rid, _ in group])
                    for key, group in self._groups.items() if group]
        self._groups.clear()
        return released
