# Convenience targets for the DistMIS reproduction.

PYTHON ?= python3

.PHONY: install test lint smoke profile-smoke monitor-smoke serve-smoke bench bench-parallel bench-kernels bench-compare examples report api-docs results clean

install:
	PIP_NO_BUILD_ISOLATION=false pip install -e .

test:
	$(PYTHON) -m pytest tests/

# ruff when available, else the dependency-free fallback in tools/lint.py;
# always gate the committed benchmark baselines on the trajectory schema
# and the Chrome-trace export contract (self-test exercises the real
# merged-trace writer including the request-tracing spans)
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools examples; \
	else \
		echo "ruff not found; using tools/lint.py fallback"; \
		$(PYTHON) tools/lint.py src tests tools examples; \
	fi
	$(PYTHON) tools/check_bench_schema.py
	PYTHONPATH=src $(PYTHON) tools/check_trace_schema.py

smoke: profile-smoke monitor-smoke serve-smoke
	PYTHONPATH=src $(PYTHON) examples/quickstart.py
	PYTHONPATH=src $(PYTHON) examples/fault_tolerance.py
	DISTMIS_BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_process_parallel_speedup.py \
		benchmarks/test_kernel_backends.py -q -s

# profiled search end-to-end at smoke scale: live progress table,
# merged trace + profile.json, bottleneck verdict, overhead benchmark
profile-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli search \
		--subjects 6 --volume 8 8 8 --epochs 1 \
		--base-filters 2 --depth 2 --losses dice \
		--profile /tmp/distmis_profile_smoke
	PYTHONPATH=src $(PYTHON) -m repro.cli profile /tmp/distmis_profile_smoke
	DISTMIS_BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_profiler_overhead.py -q -s

# tiny live-monitored search with --watch on a non-TTY: asserts the
# streaming export really streams (events.jsonl + final health snapshot)
monitor-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli search \
		--subjects 6 --volume 8 8 8 --epochs 1 \
		--base-filters 2 --depth 2 --losses dice \
		--telemetry /tmp/distmis_monitor_smoke --watch </dev/null
	PYTHONPATH=src $(PYTHON) -m repro.cli top /tmp/distmis_monitor_smoke
	PYTHONPATH=src $(PYTHON) -c "\
	from repro.telemetry import read_events; \
	evs = read_events('/tmp/distmis_monitor_smoke/events.jsonl'); \
	kinds = [e['type'] for e in evs]; \
	assert 'snapshot' in kinds, kinds; \
	assert kinds[-1] == 'health', kinds[-1]; \
	print(f'monitor-smoke OK: {len(evs)} events')"

# tiny checkpoint served by 2 replicas under open-loop load: asserts
# the quarantined serving record lands with its latency percentiles,
# the kept request traces render as waterfalls, and the exported
# merged trace satisfies the viewer contract
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli serve-bench \
		--rps 25 --duration 2 --replicas 2 \
		--volume 8 8 8 --base-filters 2 --depth 2 \
		--smoke --out /tmp/distmis_serve_smoke/BENCH_serving_smoke.json \
		--telemetry /tmp/distmis_serve_smoke/run
	$(PYTHON) tools/check_bench_schema.py \
		/tmp/distmis_serve_smoke/BENCH_serving_smoke.json
	PYTHONPATH=src $(PYTHON) -m repro.cli trace /tmp/distmis_serve_smoke/run
	PYTHONPATH=src $(PYTHON) tools/check_trace_schema.py \
		/tmp/distmis_serve_smoke/run/trace.json
	PYTHONPATH=src $(PYTHON) -c "\
	import json; \
	rec = json.load(open( \
	    '/tmp/distmis_serve_smoke/BENCH_serving_smoke.json')); \
	lat = rec['latency_seconds']; \
	assert rec['smoke'] is True; \
	assert rec['requests']['completed'] >= 50, rec['requests']; \
	assert 0 < lat['p50'] <= lat['p95'] <= lat['p99'], lat; \
	assert rec['throughput_rps'] > 0; \
	print(f'serve-smoke OK: {rec[\"requests\"][\"completed\"]} requests, ' \
	      f'p99 {lat[\"p99\"] * 1e3:.1f} ms')"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# serial vs 4-worker process pool on the same search; writes
# benchmarks/BENCH_parallel.json (DISTMIS_BENCH_SMOKE=1 for a tiny budget)
bench-parallel:
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_process_parallel_speedup.py -q -s

# reference vs gemm vs fused conv backends (x float64/float32) on a
# per-replica U-Net train step; writes benchmarks/BENCH_kernels.json
# (speedup floors, parity, per-backend rows, host info)
bench-kernels:
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_kernel_backends.py -q -s

# regression gate over the committed trajectory baselines; the parallel
# point only gates where a full-size BENCH_parallel.json exists (a full
# bench-parallel run needs a multi-core host)
bench-compare:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench compare \
		benchmarks/BENCH_kernels.json
	@if [ -f benchmarks/BENCH_parallel.json ]; then \
		PYTHONPATH=src $(PYTHON) -m repro.cli bench compare \
			benchmarks/BENCH_parallel.json; \
	else \
		echo "bench-compare: no BENCH_parallel.json trajectory point" \
		     "(full-size bench-parallel needs a multi-core host); skipped"; \
	fi

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

report:
	$(PYTHON) -m repro.cli report --output report.md

api-docs:
	$(PYTHON) tools/gen_api_docs.py

results:
	$(PYTHON) examples/generate_all_results.py results/

clean:
	rm -rf results report.md .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
