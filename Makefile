# Convenience targets for the DistMIS reproduction.

PYTHON ?= python3

.PHONY: install test lint smoke bench examples report api-docs results clean

install:
	PIP_NO_BUILD_ISOLATION=false pip install -e .

test:
	$(PYTHON) -m pytest tests/

# ruff when available, else the dependency-free fallback in tools/lint.py
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools examples; \
	else \
		echo "ruff not found; using tools/lint.py fallback"; \
		$(PYTHON) tools/lint.py src tests tools examples; \
	fi

smoke:
	PYTHONPATH=src $(PYTHON) examples/quickstart.py
	PYTHONPATH=src $(PYTHON) examples/fault_tolerance.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

report:
	$(PYTHON) -m repro.cli report --output report.md

api-docs:
	$(PYTHON) tools/gen_api_docs.py

results:
	$(PYTHON) examples/generate_all_results.py results/

clean:
	rm -rf results report.md .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
