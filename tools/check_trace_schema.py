#!/usr/bin/env python
"""Lint gate: exported Chrome traces must satisfy the viewer contract.

Validates the JSON event lists written by
``repro.telemetry.spans.Tracer.to_chrome_trace`` and
``repro.telemetry.aggregate.merged_chrome_trace``:

* every ``"ph": "X"`` event carries numeric ``ts``/``dur`` (``dur`` >= 0)
  and integer ``pid``/``tid`` -- the row-assignment contract Perfetto
  needs;
* exactly one ``clock_anchor`` metadata event with a numeric
  ``wall_t0_unix`` (the cross-process alignment anchor);
* when spans live under more than one ``pid``, every pid has a
  ``process_name`` metadata event (driver / worker-N rows stay named);
* every ``"cat": "serve"`` span (the request-tracing lanes) carries an
  ``args.trace_id`` (or, for a replica's whole-batch span, a non-empty
  ``args.trace_ids`` list) -- a serve span that lost its context can
  never be stitched back into a per-request timeline.

Arguments are trace JSON files (or directories scanned for
``trace.json``/``merged_trace.json``).  With no arguments the checker
runs a **self test**: it builds a driver tracer plus a synthetic worker
frame, records request phase spans through
``repro.telemetry.tracing.RequestTracer``, exports the merged trace and
validates it -- so ``make lint`` exercises the real export path on every
run without needing a committed trace artefact.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))


def validate_trace_events(events, where: str = "") -> list[str]:
    """Schema problems of one Chrome-trace event list (empty = valid)."""
    prefix = f"{where}: " if where else ""
    if not isinstance(events, list):
        return [f"{prefix}trace must be a JSON array of events"]
    problems: list[str] = []
    pids_with_spans: set = set()
    named_pids: set = set()
    anchors = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"{prefix}event #{i} is not an object")
            continue
        ph = ev.get("ph")
        if ph == "X":
            for field in ("ts", "dur"):
                v = ev.get(field)
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    problems.append(
                        f"{prefix}X event #{i} ({ev.get('name')!r}) has "
                        f"non-numeric {field!r}: {v!r}")
            if isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
                problems.append(
                    f"{prefix}X event #{i} ({ev.get('name')!r}) has "
                    f"negative dur {ev['dur']!r}")
            for field in ("pid", "tid"):
                v = ev.get(field)
                if not isinstance(v, int) or isinstance(v, bool):
                    problems.append(
                        f"{prefix}X event #{i} ({ev.get('name')!r}) has "
                        f"non-integer {field!r}: {v!r}")
            if isinstance(ev.get("pid"), int):
                pids_with_spans.add(ev["pid"])
            if ev.get("cat") == "serve":
                # per-request spans carry trace_id; a replica's batch
                # span covers several requests and carries trace_ids
                args = ev.get("args")
                ids = args.get("trace_ids") if isinstance(args, dict) \
                    else None
                if not isinstance(args, dict) or not (
                        args.get("trace_id")
                        or (isinstance(ids, (list, tuple)) and ids)):
                    problems.append(
                        f"{prefix}serve span #{i} ({ev.get('name')!r}) "
                        "lacks args.trace_id(s) -- it cannot be "
                        "stitched into a per-request timeline")
        elif ph == "M":
            name = ev.get("name")
            if name == "clock_anchor":
                anchors += 1
                wall = (ev.get("args") or {}).get("wall_t0_unix")
                if not isinstance(wall, (int, float)) \
                        or isinstance(wall, bool):
                    problems.append(
                        f"{prefix}clock_anchor lacks a numeric "
                        f"args.wall_t0_unix: {wall!r}")
            elif name == "process_name" and isinstance(ev.get("pid"), int):
                named_pids.add(ev["pid"])
        else:
            problems.append(
                f"{prefix}event #{i} has unknown phase {ph!r} "
                "(only X spans and M metadata are emitted)")
    if events and anchors == 0:
        problems.append(f"{prefix}no clock_anchor metadata event -- "
                        "cross-process alignment is impossible")
    if anchors > 1:
        problems.append(f"{prefix}{anchors} clock_anchor events "
                        "(expected exactly one)")
    if len(pids_with_spans) > 1:
        for pid in sorted(pids_with_spans - named_pids):
            problems.append(
                f"{prefix}pid {pid} has spans but no process_name "
                "metadata row")
    return problems


def _self_test() -> list[str]:
    """Exercise the real export path: driver phase spans + a synthetic
    worker frame through the merged-trace writer, then validate."""
    from repro.telemetry.aggregate import (
        TraceAggregator,
        merged_chrome_trace,
    )
    from repro.telemetry.hub import TelemetryHub
    from repro.telemetry.tracing import RequestTracer, TracingConfig

    hub = TelemetryHub()
    tracer = RequestTracer(
        telemetry=hub, config=TracingConfig(sample_rate=1.0))
    ctx = tracer.begin("req_000000")
    import time

    t0 = time.monotonic() - 0.01
    tracer.complete(ctx, "req_000000", arrival=t0, released=t0 + 0.002,
                    started=t0 + 0.004, done=t0 + 0.009,
                    completed=t0 + 0.01, compute_s=0.004,
                    strategy="full_volume", batch_id="batch_000000",
                    batch_size=2, replica=0, replica_pid=4242)
    agg = TraceAggregator()
    agg.add_frame({
        "worker_id": 0, "pid": 4242,
        "anchor_wall": hub.tracer.wall_t0,
        "spans": [{"name": "replica_compute", "start": 0.0, "end": 0.004,
                   "category": "serve", "resource": "replica",
                   "attrs": {"trace_id": ctx.trace_id,
                             "batch_id": "batch_000000"}}],
        "samples": [],
    })
    events = merged_chrome_trace(hub.tracer, agg)
    problems = validate_trace_events(events, where="self-test")
    if not any(ev.get("cat") == "serve" and ev.get("ph") == "X"
               for ev in events):
        problems.append("self-test: no serve-category spans were exported")
    return problems


def main(argv: list[str]) -> int:
    targets = [Path(a) for a in argv[1:]]
    if not targets:
        problems = _self_test()
        if problems:
            for p in problems:
                print(p, file=sys.stderr)
            print(f"check_trace_schema: {len(problems)} problem(s) in "
                  "self-test", file=sys.stderr)
            return 1
        print("check_trace_schema: self-test OK")
        return 0
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("trace.json")))
            files.extend(sorted(target.rglob("merged_trace.json")))
        else:
            files.append(target)
    problems = []
    for path in files:
        try:
            events = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{path}: unreadable ({exc})")
            continue
        problems.extend(validate_trace_events(events, where=str(path)))
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"check_trace_schema: {len(problems)} problem(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"check_trace_schema: {len(files)} file(s) OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
