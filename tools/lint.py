#!/usr/bin/env python3
"""Dependency-free fallback linter (used when ruff is not installed).

Implements the subset of checks the project cares most about, over the
standard-library ``ast`` module:

* F401  -- module-level import never used (``__all__`` re-exports and
  ``# noqa`` lines are respected);
* F541  -- f-string without any placeholder;
* E711  -- ``== None`` / ``!= None`` comparison;
* E712  -- ``== True`` / ``== False`` comparison;
* E722  -- bare ``except:``;
* B006  -- mutable default argument (list/dict/set literal or call).

Usage: ``python tools/lint.py PATH [PATH ...]`` -- exits non-zero when
any finding is reported, like a real linter, so ``make lint`` fails CI.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

MUTABLE_CALLS = {"list", "dict", "set"}


def _used_names(tree: ast.AST) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
    return used


def _exported(tree: ast.Module) -> set[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                return {
                    e.value
                    for e in node.value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                }
    return set()


def _import_bindings(node: ast.stmt):
    """Yield (bound_name, display_name) for an import statement."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            yield bound, alias.name
    elif isinstance(node, ast.ImportFrom):
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            yield bound, f"{node.module or ''}.{alias.name}"


def check_file(path: Path) -> list[str]:
    src = path.read_text()
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: E999 syntax error: {exc.msg}"]
    lines = src.splitlines()

    def noqa(lineno: int) -> bool:
        return 0 < lineno <= len(lines) and "# noqa" in lines[lineno - 1]

    findings: list[str] = []
    used = _used_names(tree)
    exported = _exported(tree)
    has_star = any(
        isinstance(n, ast.ImportFrom) and any(a.name == "*" for a in n.names)
        for n in ast.walk(tree)
    )

    for node in tree.body:  # module level only: local imports are often lazy
        for bound, display in _import_bindings(node):
            if display.endswith("__future__.annotations"):
                continue
            if has_star or bound in used or bound in exported:
                continue
            if not noqa(node.lineno):
                findings.append(
                    f"{path}:{node.lineno}: F401 '{display}' imported "
                    "but unused"
                )

    # format specs (the ':.4f' in a placeholder) are themselves JoinedStr
    # nodes; exclude them or every formatted field trips F541
    spec_ids = {
        id(n.format_spec)
        for n in ast.walk(tree)
        if isinstance(n, ast.FormattedValue) and n.format_spec is not None
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.JoinedStr) and id(node) not in spec_ids:
            if not any(
                isinstance(v, ast.FormattedValue) for v in node.values
            ) and not noqa(node.lineno):
                findings.append(
                    f"{path}:{node.lineno}: F541 f-string without placeholders"
                )
        elif isinstance(node, ast.Compare):
            for op, comp in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if not isinstance(comp, ast.Constant) or noqa(node.lineno):
                    continue
                if comp.value is None:
                    findings.append(
                        f"{path}:{node.lineno}: E711 comparison to None "
                        "(use 'is' / 'is not')"
                    )
                elif comp.value is True or comp.value is False:
                    findings.append(
                        f"{path}:{node.lineno}: E712 comparison to "
                        f"{comp.value} (use 'is' or truthiness)"
                    )
        elif isinstance(node, ast.ExceptHandler):
            if node.type is None and not noqa(node.lineno):
                findings.append(f"{path}:{node.lineno}: E722 bare 'except:'")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = node.args.defaults + node.args.kw_defaults
            for d in defaults:
                if d is None or noqa(d.lineno):
                    continue
                mutable = isinstance(d, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(d, ast.Call)
                    and isinstance(d.func, ast.Name)
                    and d.func.id in MUTABLE_CALLS
                )
                if mutable:
                    findings.append(
                        f"{path}:{d.lineno}: B006 mutable default argument "
                        f"in '{node.name}'"
                    )
    return findings


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv] or [Path("src"), Path("tests")]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.py")))
    findings: list[str] = []
    for f in files:
        findings.extend(check_file(f))
    for line in findings:
        print(line)
    print(f"{len(findings)} finding(s) in {len(files)} file(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
