#!/usr/bin/env python
"""Lint gate: every committed ``benchmarks/BENCH_*.json`` must satisfy
the trajectory schema (``repro.perf.regression``).

Checks, per file: valid JSON object; required keys (``benchmark``,
``smoke``, ``host``); smoke records only on ``*_smoke.json`` filenames
(and vice versa -- a smoke run must never masquerade as a trajectory
point); at least one trackable numeric metric; per-benchmark required
metrics (``REQUIRED_METRICS``: a ``BENCH_serving.json`` record must
carry ``latency_seconds.p50/.p95/.p99``, ``throughput_rps``, the
per-priority tail latencies
``priorities.<high|normal|low>.latency_seconds.p99`` and the overload
accounting ``requests.shed`` -- the serving bench zero-fills priority
levels a run never offered, so absence always means a malformed
record, never a quiet run; a
``BENCH_kernels.json`` record must carry every
``backends.<reference|gemm|fused>.<float64|float32>.step_seconds`` row
plus ``speedup`` and ``fused_speedup_vs_gemm``).
Exits non-zero with one line per violation, so ``make lint`` fails
before a malformed or quarantine-violating record lands on the
trajectory.

Arguments may be directories (every ``BENCH_*.json`` inside is linted)
or individual record files; the default is the repo's ``benchmarks/``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.perf.regression import validate_record  # noqa: E402


def main(argv: list[str]) -> int:
    targets = [Path(a) for a in argv[1:]] or [
        Path(__file__).resolve().parents[1] / "benchmarks"]
    files: list[Path] = []
    for target in targets:
        files.extend(sorted(target.glob("BENCH_*.json"))
                     if target.is_dir() else [target])
    problems: list[str] = []
    for path in files:
        try:
            obj = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{path}: unreadable ({exc})")
            continue
        problems.extend(validate_record(obj, path=path))
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"check_bench_schema: {len(problems)} problem(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"check_bench_schema: {len(files)} file(s) OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
