"""E11 -- Sections I / II-A: full-volume vs sub-patch processing.

The paper's core design argument: sub-volume patching fits GPU memory
but "loses spatial information ... and has very poor performing time
for both training and inference", while full-volume input keeps
accuracy and converges faster.  This bench trains the same architecture
both ways under an equal gradient-step budget, then compares inference
cost and segmentation quality.
"""

import numpy as np
from conftest import once

from repro.core import (
    full_volume_inference,
    sliding_window_inference,
    train_on_patches,
)
from repro.core.pipeline import MISPipeline
from repro.core.config import ExperimentSettings, build_model
from repro.nn import Adam, SoftDiceLoss, batch_dice

PATCH = (8, 8, 8)
STEPS = 60


def _setup():
    settings = ExperimentSettings(
        num_subjects=10, volume_shape=(16, 16, 16), epochs=1,
        base_filters=4, depth=2, seed=1, use_batchnorm=False,
        scale_learning_rate=False,
    )
    pipeline = MISPipeline(settings)
    train_x, train_y = pipeline.load_split_arrays("train")
    test_x, test_y = pipeline.load_split_arrays("test")
    return settings, train_x, train_y, test_x, test_y


def _train_full(settings, train_x, train_y):
    net = build_model({"learning_rate": 3e-3}, settings)
    opt = Adam(net, lr=3e-3)
    loss = SoftDiceLoss()
    rng = np.random.default_rng(0)
    n = train_x.shape[0]
    for _ in range(STEPS):
        idx = rng.choice(n, size=2, replace=False)
        net.zero_grad()
        pred = net(train_x[idx])
        _, dpred = loss.forward(pred, train_y[idx])
        net.backward(dpred)
        opt.step()
    return net


def _train_patches(settings, train_x, train_y):
    net = build_model({"learning_rate": 3e-3}, settings)
    opt = Adam(net, lr=3e-3)
    train_on_patches(
        net, SoftDiceLoss(), opt, train_x, train_y,
        patch_shape=PATCH, steps=STEPS, patches_per_step=2,
        rng=np.random.default_rng(0),
    )
    return net


def _compare():
    settings, train_x, train_y, test_x, test_y = _setup()
    full_net = _train_full(settings, train_x, train_y)
    patch_net = _train_patches(settings, train_x, train_y)

    full_res = full_volume_inference(full_net, test_x)
    patch_res = sliding_window_inference(patch_net, test_x, PATCH,
                                         overlap=0.5)
    full_dice = float(batch_dice(full_res.prediction, test_y).mean())
    patch_dice = float(batch_dice(patch_res.prediction, test_y).mean())
    return full_res, patch_res, full_dice, patch_dice


def test_full_volume_vs_patches(benchmark):
    full_res, patch_res, full_dice, patch_dice = once(benchmark, _compare)

    print("\n=== E11: full-volume vs sub-patch processing "
          f"(equal {STEPS}-step budget) ===")
    print(f"{'strategy':<22} {'test DSC':>9} {'fwd passes':>11} "
          f"{'overcompute':>12} {'infer s':>8}")
    print(f"{'full volume (paper)':<22} {full_dice:>9.3f} "
          f"{full_res.forward_passes:>11} "
          f"{full_res.overcompute_factor():>12.2f} "
          f"{full_res.seconds:>8.2f}")
    print(f"{'sub-patches':<22} {patch_dice:>9.3f} "
          f"{patch_res.forward_passes:>11} "
          f"{patch_res.overcompute_factor():>12.2f} "
          f"{patch_res.seconds:>8.2f}")

    # The paper's inference-COST claim reproduces robustly: sliding
    # windows redo work and multiply the forward passes.
    assert patch_res.overcompute_factor() > 2.0
    assert patch_res.forward_passes > full_res.forward_passes
    assert patch_res.seconds > full_res.seconds
    # The ACCURACY claim ("sub-patching loses spatial information") is
    # task-dependent and does NOT discriminate on the synthetic task:
    # tumours here are locally determined by intensity, and the
    # foreground-biased patch sampler even counteracts class imbalance,
    # so patches can win at small scale (EXPERIMENTS.md discusses).
    # Assert only that both strategies learn.
    assert full_dice > 0.5
    assert patch_dice > 0.5
