"""E1 -- Table I: elapsed time and speed-up, both methods, 1..32 GPUs.

Regenerates the paper's headline table from the calibrated simulator
and prints it next to the paper's values.  Shape assertions: both
methods scale near-linearly, experiment parallelism wins at every n>1,
and the 32-GPU speed-ups land in the paper's x12-x14 / x14-x16 bands.
"""

from conftest import once

from repro.perf import (
    TABLE1_DATA_PARALLEL_S,
    TABLE1_DP_SPEEDUPS,
    TABLE1_EP_SPEEDUPS,
    TABLE1_EXPERIMENT_PARALLEL_S,
    SpeedupTable,
    calibrated_model,
    format_hms,
)


def _build_table():
    return SpeedupTable(calibrated_model()).compute()


def test_table1_reproduction(benchmark):
    rows = once(benchmark, _build_table)

    print("\n=== Table I reproduction (simulated MareNostrum-CTE) ===")
    print(f"{'':8}| {'Data Parallel':^25} | {'Experiment Parallel':^25}")
    print(f"{'# GPUs':8}| {'ours':>12} {'paper':>12} | {'ours':>12} {'paper':>12}")
    for r in rows:
        n = r.num_gpus
        print(
            f"{n:>7} | {format_hms(r.dp_seconds):>12} "
            f"{format_hms(TABLE1_DATA_PARALLEL_S[n]):>12} | "
            f"{format_hms(r.ep_seconds):>12} "
            f"{format_hms(TABLE1_EXPERIMENT_PARALLEL_S[n]):>12}"
        )
    print(f"\n{'# GPUs':8}| {'dp x ours':>10} {'dp x paper':>11} | "
          f"{'ep x ours':>10} {'ep x paper':>11}")
    for r in rows:
        n = r.num_gpus
        print(
            f"{n:>7} | {r.dp_speedup:>10.2f} {TABLE1_DP_SPEEDUPS[n]:>11.2f} | "
            f"{r.ep_speedup:>10.2f} {TABLE1_EP_SPEEDUPS[n]:>11.2f}"
        )

    # --- shape assertions ---------------------------------------------------
    for prev, cur in zip(rows, rows[1:]):
        assert cur.dp_seconds < prev.dp_seconds
        assert cur.ep_seconds < prev.ep_seconds
    for r in rows:
        if r.num_gpus > 1:
            assert r.ep_speedup > r.dp_speedup
        assert r.dp_speedup <= r.num_gpus
    r32 = rows[-1]
    assert 12.0 <= r32.dp_speedup <= 14.0, "paper band: x12-x14"
    assert 14.0 <= r32.ep_speedup <= 16.5, "paper band: x14-x16"
    # every cell within 15% of the paper's elapsed time
    for r in rows:
        assert abs(r.dp_seconds / TABLE1_DATA_PARALLEL_S[r.num_gpus] - 1) < 0.15
        assert abs(r.ep_seconds / TABLE1_EXPERIMENT_PARALLEL_S[r.num_gpus] - 1) < 0.15
