"""E5 -- Section III-B1: offline binarisation removes the input
bottleneck.

Two parts:

* the profiler comparison on real files (NIfTI decode + transform every
  epoch vs one-off records), printing the stage table the paper read
  off TensorBoard;
* full-shape I/O micro-benchmarks at the paper's exact tensor size
  (4 x 240 x 240 x 155 float32 = 133 MiB per subject) showing record
  read is far cheaper than decode + transform.
"""

import numpy as np
import pytest
from conftest import once

from repro.core import profile_online_vs_offline
from repro.data import (
    SyntheticBraTS,
    preprocess_subject,
    read_example_file,
    read_nifti,
    write_example_file,
    write_nifti,
)


def test_online_vs_offline_pipeline(benchmark, tmp_path):
    report = once(
        benchmark, profile_online_vs_offline,
        num_subjects=6, volume_shape=(48, 48, 32), epochs=3,
        workdir=tmp_path,
    )
    print("\n=== Section III-B1: input pipeline bottleneck analysis ===")
    print(report.render())

    assert report.offline_epoch_s < report.online_epoch_s
    assert report.bottleneck().stage in ("nifti_decode", "transform")
    assert report.epochs_to_amortize < 250  # pays off within one run


@pytest.fixture(scope="module")
def full_shape_subject():
    """One subject at the paper's exact volume size."""
    gen = SyntheticBraTS(num_subjects=1, volume_shape=(240, 240, 155),
                         seed=0, noise_sigma=0.05)
    return gen[0]


def test_full_shape_transform_cost(benchmark, full_shape_subject):
    """The per-subject transform at 240x240x155 -- what online mode pays
    every epoch for every subject."""
    out = benchmark.pedantic(
        preprocess_subject, args=(full_shape_subject,),
        kwargs={"divisor": 8}, rounds=3, iterations=1,
    )
    assert out.image.shape == (4, 240, 240, 152)


def test_full_shape_record_roundtrip(benchmark, full_shape_subject, tmp_path):
    """Offline mode's per-epoch cost: reading the binarised record."""
    ex = preprocess_subject(full_shape_subject, divisor=8)
    path = tmp_path / "one.rec"
    write_example_file(path, [{"image": ex.image, "mask": ex.mask}])

    def read_back():
        (rec,) = read_example_file(path)
        return rec["image"].shape

    shape = benchmark.pedantic(read_back, rounds=3, iterations=1)
    assert shape == (4, 240, 240, 152)


def test_full_shape_nifti_decode(benchmark, full_shape_subject, tmp_path):
    """Online mode's raw ingest: NIfTI decode at full volume size."""
    path = write_nifti(tmp_path / "vol.nii", full_shape_subject.image)

    img = benchmark.pedantic(read_nifti, args=(path,), rounds=3, iterations=1)
    assert img.data.shape == (4, 240, 240, 155)
