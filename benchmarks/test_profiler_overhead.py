"""E17 -- profiling and live export must be close to free serially.

An observability layer nobody can afford to leave on measures nothing:
the step-bucket attribution added across the stack (``data_wait`` /
``compute`` / ``sync`` / ``checkpoint``) is a pair of ``perf_counter``
reads and one pre-resolved counter ``inc`` per site, so a fully
profiled serial search must cost within a few percent of the same
search against the branch-free null hub.  The same bound applies to
the streaming side: a :class:`~repro.telemetry.LiveMonitor` ticking at
its default interval (rate-limited to one clock read per reporter call
between snapshots) must also stay under ``MAX_OVERHEAD``.

The same 2-trial grid runs against ``NULL_HUB`` and against the
instrumented hubs; each variant is timed ``REPEATS`` times and the best
(least-noisy) run of each is compared.  Machine-readable summaries land
in ``BENCH_profiler_overhead.json`` / ``BENCH_live_overhead.json`` next
to this file.  ``DISTMIS_BENCH_SMOKE=1`` shrinks the workload so the
benchmark doubles as a smoke test (writing quarantined ``*_smoke.json``
files); the <5% assertions are only enforced on the full-size run (at
smoke scale a search is so short that scheduler noise, not the
instrumentation, dominates the ratio).
"""

import json
import tempfile
import time
from pathlib import Path

from repro.core import ExperimentSettings, HyperparameterSpace
from repro.core.experiment_parallel import run_search_inprocess
from repro.perf.regression import (
    bench_output_path,
    host_metadata,
    is_smoke_env,
)
from repro.telemetry import NULL_HUB, LiveMonitor, TelemetryHub

SMOKE = is_smoke_env()
REPEATS = 2 if SMOKE else 3
MAX_OVERHEAD = 0.05
# Smoke runs are quarantined onto *_smoke.json trajectory-safe names.
OUT = bench_output_path(__file__, "profiler_overhead", smoke=SMOKE)
OUT_LIVE = bench_output_path(__file__, "live_overhead", smoke=SMOKE)
OUT_TRACE = bench_output_path(__file__, "trace_overhead", smoke=SMOKE)


def _settings() -> ExperimentSettings:
    if SMOKE:
        return ExperimentSettings(num_subjects=6, volume_shape=(8, 8, 8),
                                  epochs=2, base_filters=2, depth=2, seed=0)
    # compute-heavy on purpose: the overhead bound is a ratio, so the
    # denominator must be dominated by real training work
    return ExperimentSettings(num_subjects=10, volume_shape=(16, 16, 16),
                              epochs=4, base_filters=4, depth=2, seed=0)


def _space() -> HyperparameterSpace:
    return HyperparameterSpace(axes={
        "learning_rate": [1e-2, 1e-3],
        "loss": ["dice"],
    })


def _time_search(telemetry) -> float:
    settings, space = _settings(), _space()
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = run_search_inprocess(space, settings, telemetry=telemetry)
        best = min(best, time.perf_counter() - t0)
        assert len(result.outcomes) == 2
    return best


def test_profiler_overhead_under_5pct():
    baseline_s = _time_search(NULL_HUB)

    hub = TelemetryHub(profile=True)
    profiled_s = _time_search(hub)

    # the profiled run really measured something
    rows = {r["name"] for r in hub.metrics.samples()}
    assert "step_bucket_seconds_total" in rows

    overhead = profiled_s / baseline_s - 1.0
    summary = {
        "benchmark": "profiler_overhead",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "epochs": _settings().epochs,
        "volume_shape": list(_settings().volume_shape),
        "baseline_seconds": round(baseline_s, 4),
        "profiled_seconds": round(profiled_s, 4),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": MAX_OVERHEAD,
        "host": host_metadata(),
    }
    OUT.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\nnull {baseline_s:.2f}s  profiled {profiled_s:.2f}s  "
          f"overhead {overhead:+.1%} (budget {MAX_OVERHEAD:.0%}) "
          f"-> {OUT.name}")

    if SMOKE:
        import pytest

        pytest.skip("smoke scale: workload too short for a stable ratio; "
                    "overhead recorded, bound enforced on the full run")
    assert overhead < MAX_OVERHEAD, (
        f"profiling cost {overhead:.1%} (> {MAX_OVERHEAD:.0%}) on the "
        f"serial executor: null {baseline_s:.2f}s vs "
        f"profiled {profiled_s:.2f}s")


def test_live_export_overhead_under_5pct():
    baseline_s = _time_search(NULL_HUB)

    def _time_live() -> float:
        settings, space = _settings(), _space()
        best = float("inf")
        for _ in range(REPEATS):
            with tempfile.TemporaryDirectory() as run_dir:
                hub = TelemetryHub(run_dir=run_dir)
                hub.attach_live(LiveMonitor(hub))
                t0 = time.perf_counter()
                result = run_search_inprocess(space, settings,
                                              telemetry=hub)
                elapsed = time.perf_counter() - t0
                # the monitor really streamed: events.jsonl exists
                assert (Path(run_dir) / "events.jsonl").exists() or \
                    hub.live.snapshots == 0
                hub.live.close()
            best = min(best, elapsed)
            assert len(result.outcomes) == 2
        return best

    live_s = _time_live()
    overhead = live_s / baseline_s - 1.0
    summary = {
        "benchmark": "live_overhead",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "epochs": _settings().epochs,
        "volume_shape": list(_settings().volume_shape),
        "baseline_seconds": round(baseline_s, 4),
        "live_seconds": round(live_s, 4),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": MAX_OVERHEAD,
        "host": host_metadata(),
    }
    OUT_LIVE.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\nnull {baseline_s:.2f}s  live {live_s:.2f}s  "
          f"overhead {overhead:+.1%} (budget {MAX_OVERHEAD:.0%}) "
          f"-> {OUT_LIVE.name}")

    if SMOKE:
        import pytest

        pytest.skip("smoke scale: workload too short for a stable ratio; "
                    "overhead recorded, bound enforced on the full run")
    assert overhead < MAX_OVERHEAD, (
        f"live export cost {overhead:.1%} (> {MAX_OVERHEAD:.0%}) on the "
        f"serial executor: null {baseline_s:.2f}s vs live {live_s:.2f}s")


def test_request_tracing_overhead_under_5pct():
    """Request tracing at the default tail-based sampling must stay
    inside the same budget on the serving hot path: per request it adds
    a handful of ``monotonic`` stamps, one sampler decision and (for
    the kept minority) a few span records."""
    import numpy as np

    from repro.core.checkpoint import CheckpointManager
    from repro.nn import UNet3D
    from repro.serve import ModelServer, ServeConfig
    from repro.telemetry import TracingConfig

    model_kwargs = dict(in_channels=1, out_channels=1,
                        base_filters=2 if SMOKE else 4, depth=2,
                        use_batchnorm=False)
    shape = (1, 8, 8, 8) if SMOKE else (1, 16, 16, 16)
    n_requests = 16 if SMOKE else 64
    rng = np.random.default_rng(0)
    vols = [rng.normal(size=shape) for _ in range(n_requests)]

    with tempfile.TemporaryDirectory() as ckpt_dir:
        mgr = CheckpointManager(ckpt_dir)
        mgr.save(UNet3D(rng=np.random.default_rng(7), **model_kwargs),
                 epoch=1, val_dice=0.5)

        def _time_burst(tracing: TracingConfig) -> float:
            cfg = ServeConfig(checkpoint=str(mgr.best_path),
                              model_builder=UNet3D,
                              model_kwargs=model_kwargs, replicas=1,
                              max_batch=4, max_delay_ms=1.0,
                              tracing=tracing)
            best = float("inf")
            for _ in range(REPEATS):
                with ModelServer(cfg, telemetry=NULL_HUB) as server:
                    t0 = time.perf_counter()
                    futs = [server.submit(v) for v in vols]
                    server.drain(timeout_s=600)
                    elapsed = time.perf_counter() - t0
                    assert all(f.result().batch_size >= 1 for f in futs)
                    if tracing.enabled:
                        # default sampling really decided something
                        assert server.latency_quantile(0.5) > 0
                best = min(best, elapsed)
            return best

        baseline_s = _time_burst(TracingConfig(enabled=False))
        traced_s = _time_burst(TracingConfig())  # default sampling

    overhead = traced_s / baseline_s - 1.0
    summary = {
        "benchmark": "trace_overhead",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "requests": n_requests,
        "volume_shape": list(shape[1:]),
        "baseline_seconds": round(baseline_s, 4),
        "traced_seconds": round(traced_s, 4),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": MAX_OVERHEAD,
        "host": host_metadata(),
    }
    OUT_TRACE.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\nuntraced {baseline_s:.2f}s  traced {traced_s:.2f}s  "
          f"overhead {overhead:+.1%} (budget {MAX_OVERHEAD:.0%}) "
          f"-> {OUT_TRACE.name}")

    if SMOKE:
        import pytest

        pytest.skip("smoke scale: workload too short for a stable ratio; "
                    "overhead recorded, bound enforced on the full run")
    assert overhead < MAX_OVERHEAD, (
        f"request tracing cost {overhead:.1%} (> {MAX_OVERHEAD:.0%}) on "
        f"the serving path: untraced {baseline_s:.2f}s vs "
        f"traced {traced_s:.2f}s")
