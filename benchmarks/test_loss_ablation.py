"""E8 -- Section II-B2: soft Dice vs quadratic soft Dice.

The paper tested the quadratic (V-Net-style) variant and found it
"seems to lead to worst validation results", keeping plain soft Dice.
This bench trains the same configuration under both losses and reports
the validation comparison.  NOTE (EXPERIMENTS.md): on the synthetic
task the ordering is not reliably reproduced -- both losses reach high
Dice and the quadratic variant can win at small scale -- so the bench
asserts only that both train successfully and prints the comparison.
"""

from conftest import once

from repro.core import train_trial


def _run_pair(settings, pipeline):
    dice = train_trial({"learning_rate": 3e-3, "loss": "dice"},
                       settings, pipeline)
    quad = train_trial({"learning_rate": 3e-3, "loss": "quadratic_dice"},
                       settings, pipeline)
    return dice, quad


def test_loss_variant_comparison(benchmark, learn_settings, learn_pipeline):
    dice, quad = once(benchmark, _run_pair, learn_settings, learn_pipeline)

    print("\n=== Section II-B2: loss-variant comparison ===")
    print(f"{'loss':<22} {'val DSC':>8} {'test DSC':>9} {'final train loss':>17}")
    for name, out in (("soft dice (paper)", dice),
                      ("quadratic soft dice", quad)):
        print(f"{name:<22} {out.val_dice:>8.4f} {out.test_dice:>9.4f} "
              f"{out.history[-1].train_loss:>17.4f}")
    verdict = "plain dice" if dice.val_dice >= quad.val_dice else "quadratic"
    print(f"better on this run: {verdict} "
          "(paper found quadratic worse on BraTS; see EXPERIMENTS.md)")

    assert dice.val_dice > 0.6
    assert quad.val_dice > 0.6
