"""E18 -- the GEMM conv backend must beat the einsum reference 2x.

The im2col/GEMM lowering in ``repro.nn.kernels.gemm`` only earns its
complexity if a *full* U-Net train step (forward, Dice loss, backward,
Adam update) is at least twice as fast as the ``reference`` einsum
backend on the same weights and data.  The workload is the paper's
4-modality U-Net (base_filters=8, depth=4) on a batch-1 volume: with
the paper's global batch of 2 sharded across data-parallel replicas
(Section IV-B), batch 1 is exactly what each worker steps on.

Both backends run the identical model state; besides speed, the run
asserts numerical parity (float64 predictions and flat gradients to
rtol 1e-9, and the opt-in float32 path to rtol 1e-4) so the speedup is
never bought with accuracy.  Each backend is timed ``REPEATS`` times
over ``STEPS`` steps and the best run is compared; a machine-readable
summary -- including the pinned BLAS thread counts and CPU metadata
that make the numbers comparable across hosts -- lands in
``BENCH_kernels.json`` next to this file.  ``DISTMIS_BENCH_SMOKE=1``
shrinks the workload so the benchmark doubles as a smoke test; the
speedup bound is only enforced on the full-size run (at smoke scale
the step is interpreter-bound, not GEMM-bound).
"""

import json
import time

import numpy as np

from repro.nn import (
    Adam,
    SoftDiceLoss,
    UNet3D,
    use_backend,
    use_compute_dtype,
    workspace,
)
from repro.nn.kernels import consume_kernel_seconds
from repro.perf.regression import (
    bench_output_path,
    host_metadata,
    is_smoke_env,
)

SMOKE = is_smoke_env()
REPEATS = 2 if SMOKE else 3
MIN_SPEEDUP = 2.0
# Smoke runs are quarantined onto BENCH_kernels_smoke.json so they can
# never overwrite the committed trajectory point.
OUT = bench_output_path(__file__, "kernels", smoke=SMOKE)

if SMOKE:
    VOLUME, BASE_FILTERS, DEPTH, STEPS = (8, 8, 8), 2, 2, 1
else:
    VOLUME, BASE_FILTERS, DEPTH, STEPS = (32, 32, 32), 8, 4, 2
BATCH = 1  # per-replica shard of the paper's global batch 2


def _build(dtype=None):
    net = UNet3D(4, 1, base_filters=BASE_FILTERS, depth=DEPTH,
                 norm="batch", rng=np.random.default_rng(7), dtype=dtype)
    net.train()
    return net


def _data(dtype=np.float64):
    rng = np.random.default_rng(11)
    x = rng.normal(size=(BATCH, 4, *VOLUME)).astype(dtype, copy=False)
    t = (rng.uniform(size=(BATCH, 1, *VOLUME)) > 0.9).astype(dtype)
    return x, t


def _train_step(net, opt, loss_fn, x, t):
    net.zero_grad()
    pred = net(x)
    _, dpred = loss_fn.forward(pred, t)
    net.backward(dpred)
    opt.step()
    return pred


def _time_backend(name: str) -> tuple[float, dict[str, float]]:
    """Best-of-REPEATS seconds for STEPS train steps under ``name``."""
    x, t = _data()
    loss_fn = SoftDiceLoss()
    best = float("inf")
    kernels: dict[str, float] = {}
    with use_backend(name):
        for _ in range(REPEATS):
            net = _build()
            opt = Adam(net, lr=1e-3)
            _train_step(net, opt, loss_fn, x, t)  # warm the workspace
            consume_kernel_seconds()
            t0 = time.perf_counter()
            for _ in range(STEPS):
                _train_step(net, opt, loss_fn, x, t)
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
                kernels = {
                    f"{b}/{op}": round(s, 4)
                    for (b, op), s in consume_kernel_seconds().items()
                }
    return best, kernels


def _grads_and_pred(name: str, dtype=None):
    data_dtype = np.float32 if dtype == "float32" else np.float64
    x, t = _data(data_dtype)
    loss_fn = SoftDiceLoss()
    with use_backend(name):
        net = _build(dtype=dtype)
        net.zero_grad()
        pred = net(x)
        _, dpred = loss_fn.forward(pred, t)
        net.backward(dpred)
        return pred, net.get_flat_grads()


def test_gemm_backend_parity_and_speedup():
    # -- parity first: same weights, same data, both backends ----------
    pred_ref, grads_ref = _grads_and_pred("reference")
    pred_gemm, grads_gemm = _grads_and_pred("gemm")
    np.testing.assert_allclose(pred_gemm, pred_ref, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(grads_gemm, grads_ref, rtol=1e-9, atol=1e-12)

    with use_compute_dtype("float32"):
        pred_ref32, grads_ref32 = _grads_and_pred("reference", "float32")
        pred_gemm32, grads_gemm32 = _grads_and_pred("gemm", "float32")
    assert pred_ref32.dtype == np.float32 and pred_gemm32.dtype == np.float32
    np.testing.assert_allclose(pred_gemm32, pred_ref32, rtol=1e-4, atol=1e-5)
    np.testing.assert_allclose(grads_gemm32, grads_ref32,
                               rtol=1e-4, atol=1e-5)

    # -- then the race -------------------------------------------------
    ref_s, ref_kernels = _time_backend("reference")
    gemm_s, gemm_kernels = _time_backend("gemm")
    speedup = ref_s / gemm_s

    summary = {
        "benchmark": "kernel_backends",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "steps": STEPS,
        "batch": BATCH,
        "volume_shape": list(VOLUME),
        "base_filters": BASE_FILTERS,
        "depth": DEPTH,
        "reference_seconds": round(ref_s, 4),
        "gemm_seconds": round(gemm_s, 4),
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "workspace_stats": workspace().stats(),
        "kernel_seconds": {"reference": ref_kernels, "gemm": gemm_kernels},
        "host": host_metadata(),
    }
    OUT.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\nreference {ref_s:.3f}s  gemm {gemm_s:.3f}s  "
          f"speedup {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x) -> {OUT.name}")

    if SMOKE:
        import pytest

        pytest.skip("smoke scale: interpreter-bound step; speedup recorded, "
                    "floor enforced on the full run")
    assert speedup >= MIN_SPEEDUP, (
        f"GEMM backend only {speedup:.2f}x faster than reference "
        f"(floor {MIN_SPEEDUP:.1f}x): reference {ref_s:.3f}s vs "
        f"gemm {gemm_s:.3f}s for {STEPS} train steps")
