"""E18 -- the kernel-backend ladder: reference < gemm < fused.

The im2col/GEMM lowering in ``repro.nn.kernels.gemm`` only earns its
complexity if a *full* U-Net train step (forward, Dice loss, backward,
Adam update) is at least twice as fast as the ``reference`` einsum
backend; the depth-sliced fused backend (``repro.nn.kernels.fused``)
must in turn beat ``gemm`` by 1.5x on the float32 fast path that ``distmis
search`` defaults to.  The workload is the paper's 4-modality U-Net
(base_filters=8, depth=4) on a batch-1 volume: with the paper's global
batch of 2 sharded across data-parallel replicas (Section IV-B), batch
1 is exactly what each worker steps on.

Every backend x dtype combination (reference/gemm/fused x
float64/float32) is timed on identical model state and recorded as its
own row under ``backends.<name>.<dtype>`` -- the per-backend rows
``make lint`` requires of a ``kernel_backends`` record -- plus a
larger-volume float32 point (gemm vs fused) probing the cache regime
the tiling targets.  Besides speed, the run asserts numerical parity
(float64 predictions and flat gradients to rtol 1e-9, and the float32
path to rtol 1e-4) so no speedup is ever bought with accuracy.  Each
combination is timed ``REPEATS`` times over ``STEPS`` steps and the
best run is kept; a machine-readable summary -- including the pinned
BLAS thread counts and CPU metadata that make the numbers comparable
across hosts -- lands in ``BENCH_kernels.json`` next to this file.
``DISTMIS_BENCH_SMOKE=1`` shrinks the workload so the benchmark
doubles as a smoke test over all three backends; the speedup floors
are only enforced on the full-size run (at smoke scale the step is
interpreter-bound, not GEMM-bound).
"""

import json
import time

import numpy as np

from repro.nn import (
    Adam,
    SoftDiceLoss,
    UNet3D,
    use_backend,
    use_compute_dtype,
    workspace,
)
from repro.nn.kernels import consume_kernel_seconds
from repro.perf.regression import (
    bench_output_path,
    host_metadata,
    is_smoke_env,
)

SMOKE = is_smoke_env()
REPEATS = 2 if SMOKE else 3
BACKENDS = ("reference", "gemm", "fused")
DTYPES = ("float64", "float32")
MIN_SPEEDUP = 2.0          # gemm over reference, float64
MIN_FUSED_SPEEDUP = 1.5    # fused over gemm, float32 fast path
# Smoke runs are quarantined onto BENCH_kernels_smoke.json so they can
# never overwrite the committed trajectory point.
OUT = bench_output_path(__file__, "kernels", smoke=SMOKE)

if SMOKE:
    VOLUME, BASE_FILTERS, DEPTH, STEPS = (8, 8, 8), 2, 2, 1
    LARGE_VOLUME, LARGE_STEPS, LARGE_REPEATS = (16, 16, 16), 1, 1
else:
    VOLUME, BASE_FILTERS, DEPTH, STEPS = (32, 32, 32), 8, 4, 2
    LARGE_VOLUME, LARGE_STEPS, LARGE_REPEATS = (48, 48, 48), 1, 2
BATCH = 1  # per-replica shard of the paper's global batch 2


def _build(dtype=None, volume=None):
    net = UNet3D(4, 1, base_filters=BASE_FILTERS, depth=DEPTH,
                 norm="batch", rng=np.random.default_rng(7), dtype=dtype)
    net.train()
    return net


def _data(dtype=np.float64, volume=None):
    volume = VOLUME if volume is None else volume
    rng = np.random.default_rng(11)
    x = rng.normal(size=(BATCH, 4, *volume)).astype(dtype, copy=False)
    t = (rng.uniform(size=(BATCH, 1, *volume)) > 0.9).astype(dtype)
    return x, t


def _train_step(net, opt, loss_fn, x, t):
    net.zero_grad()
    pred = net(x)
    _, dpred = loss_fn.forward(pred, t)
    net.backward(dpred)
    opt.step()
    return pred


def _time_backend(name: str, dtype: str = "float64", volume=None,
                  steps=None, repeats=None) -> tuple[float, dict[str, float]]:
    """Best-of-repeats *per-step* seconds under ``name`` at ``dtype``."""
    steps = STEPS if steps is None else steps
    repeats = REPEATS if repeats is None else repeats
    np_dtype = np.float32 if dtype == "float32" else np.float64
    x, t = _data(np_dtype, volume)
    loss_fn = SoftDiceLoss()
    best = float("inf")
    kernels: dict[str, float] = {}
    with use_backend(name), use_compute_dtype(dtype):
        for _ in range(repeats):
            net = _build(dtype=dtype)
            opt = Adam(net, lr=1e-3)
            _train_step(net, opt, loss_fn, x, t)  # warm the workspace
            consume_kernel_seconds()
            t0 = time.perf_counter()
            for _ in range(steps):
                _train_step(net, opt, loss_fn, x, t)
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
                kernels = {
                    f"{b}/{op}": round(s / steps, 4)
                    for (b, op), s in consume_kernel_seconds().items()
                }
    return best / steps, kernels


def _grads_and_pred(name: str, dtype=None):
    data_dtype = np.float32 if dtype == "float32" else np.float64
    x, t = _data(data_dtype)
    loss_fn = SoftDiceLoss()
    with use_backend(name):
        net = _build(dtype=dtype)
        net.zero_grad()
        pred = net(x)
        _, dpred = loss_fn.forward(pred, t)
        net.backward(dpred)
        return pred, net.get_flat_grads()


def test_backend_ladder_parity_and_speedup():
    # -- parity first: same weights, same data, all backends -----------
    pred_ref, grads_ref = _grads_and_pred("reference")
    for name in ("gemm", "fused"):
        pred, grads = _grads_and_pred(name)
        np.testing.assert_allclose(pred, pred_ref, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(grads, grads_ref, rtol=1e-9, atol=1e-12)

    with use_compute_dtype("float32"):
        pred_ref32, grads_ref32 = _grads_and_pred("reference", "float32")
        assert pred_ref32.dtype == np.float32
        for name in ("gemm", "fused"):
            pred32, grads32 = _grads_and_pred(name, "float32")
            assert pred32.dtype == np.float32
            np.testing.assert_allclose(pred32, pred_ref32,
                                       rtol=1e-4, atol=1e-5)
            np.testing.assert_allclose(grads32, grads_ref32,
                                       rtol=1e-4, atol=1e-5)

    # -- then the race: every backend x dtype row ----------------------
    rows: dict[str, dict[str, dict]] = {}
    for name in BACKENDS:
        rows[name] = {}
        for dtype in DTYPES:
            step_s, kernels = _time_backend(name, dtype)
            rows[name][dtype] = {
                "step_seconds": round(step_s, 4),
                "kernel_seconds": kernels,
            }

    speedup = (rows["reference"]["float64"]["step_seconds"]
               / rows["gemm"]["float64"]["step_seconds"])
    fused_speedup = (rows["gemm"]["float32"]["step_seconds"]
                     / rows["fused"]["float32"]["step_seconds"])

    # -- larger-volume float32 point (the cache regime tiling targets) -
    gemm_large, _ = _time_backend("gemm", "float32", LARGE_VOLUME,
                                  LARGE_STEPS, LARGE_REPEATS)
    fused_large, _ = _time_backend("fused", "float32", LARGE_VOLUME,
                                   LARGE_STEPS, LARGE_REPEATS)

    summary = {
        "benchmark": "kernel_backends",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "steps": STEPS,
        "batch": BATCH,
        "volume_shape": list(VOLUME),
        "base_filters": BASE_FILTERS,
        "depth": DEPTH,
        "backends": rows,
        # legacy flat fields, kept so the committed trajectory stays
        # comparable across schema generations
        "reference_seconds": round(
            rows["reference"]["float64"]["step_seconds"] * STEPS, 4),
        "gemm_seconds": round(
            rows["gemm"]["float64"]["step_seconds"] * STEPS, 4),
        "speedup": round(speedup, 3),
        "fused_speedup_vs_gemm": round(fused_speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "min_fused_speedup": MIN_FUSED_SPEEDUP,
        "large_volume": {
            "volume_shape": list(LARGE_VOLUME),
            "steps": LARGE_STEPS,
            "dtype": "float32",
            "gemm_step_seconds": round(gemm_large, 4),
            "fused_step_seconds": round(fused_large, 4),
            "fused_speedup_vs_gemm": round(gemm_large / fused_large, 3),
        },
        "workspace_stats": workspace().stats(),
        "host": host_metadata(),
    }
    OUT.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\nref {rows['reference']['float64']['step_seconds']:.3f}s  "
          f"gemm {rows['gemm']['float64']['step_seconds']:.3f}s  "
          f"speedup {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)")
    print(f"float32: gemm {rows['gemm']['float32']['step_seconds']:.3f}s  "
          f"fused {rows['fused']['float32']['step_seconds']:.3f}s  "
          f"speedup {fused_speedup:.2f}x (floor {MIN_FUSED_SPEEDUP:.1f}x) "
          f"-> {OUT.name}")

    if SMOKE:
        import pytest

        pytest.skip("smoke scale: interpreter-bound step; rows recorded, "
                    "floors enforced on the full run")
    assert speedup >= MIN_SPEEDUP, (
        f"GEMM backend only {speedup:.2f}x faster than reference "
        f"(floor {MIN_SPEEDUP:.1f}x)")
    assert fused_speedup >= MIN_FUSED_SPEEDUP, (
        f"fused backend only {fused_speedup:.2f}x faster than gemm at "
        f"float32 (floor {MIN_FUSED_SPEEDUP:.1f}x)")
