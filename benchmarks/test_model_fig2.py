"""E6 -- Fig 2: the 3D U-Net architecture.

Builds the paper's model, checks the filter progression and the
parameter count (printing ours next to the paper's 406,793 -- see
EXPERIMENTS.md for the discrepancy discussion), and validates the
full-size 4x240x240x152 -> 1x240x240x152 I/O contract statically.
"""

import numpy as np
from conftest import once

from repro.nn import PAPER_INPUT_SHAPE, UNet3D
from repro.perf import unet3d_forward_flops

PAPER_PARAM_COUNT = 406_793


def _build_both():
    rng = np.random.default_rng(0)
    halves = UNet3D(4, 1, 8, 4, transpose_halves=True, rng=rng)
    keeps = UNet3D(4, 1, 8, 4, transpose_halves=False, rng=rng)
    return halves, keeps


def test_fig2_model(benchmark):
    halves, keeps = once(benchmark, _build_both)

    print("\n=== Fig 2: 3D U-Net architecture ===")
    print(f"filter progression       : {halves.filters} (paper: 8*2^(s-1))")
    print(f"params, synthesis halves : {halves.num_params():,} ")
    print(f"params, synthesis keeps  : {keeps.num_params():,}")
    print(f"params, paper reports    : {PAPER_PARAM_COUNT:,}")
    print(f"forward FLOPs / sample   : {unet3d_forward_flops():.3e}")
    print("input -> output          : "
          f"{PAPER_INPUT_SHAPE} -> (1, 240, 240, 152)")

    assert halves.filters == [8, 16, 32, 64]
    assert halves.num_params() == 352_513
    assert keeps.num_params() == 410_361
    # The paper's count sits between the two canonical readings.
    assert halves.num_params() < PAPER_PARAM_COUNT < keeps.num_params()
    halves.validate_input_shape((1, *PAPER_INPUT_SHAPE))


def test_forward_pass_smoke(benchmark):
    """A real forward pass at reduced volume (full 240^2x152 needs more
    RAM than CI guarantees; shape algebra is identical)."""
    rng = np.random.default_rng(0)
    net = UNet3D(4, 1, 8, 4, rng=rng)
    x = rng.normal(size=(1, 4, 48, 48, 32))

    y = benchmark.pedantic(net.predict, args=(x,), rounds=2, iterations=1)
    assert y.shape == (1, 1, 48, 48, 32)
    assert (y >= 0).all() and (y <= 1).all()
