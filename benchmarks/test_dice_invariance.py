"""E4 -- Section IV-C: the distribution strategy does not change Dice.

The paper validates its pipeline by checking DSC ~ 0.89 under every
deployment.  Here the same configuration trains under three deployments
of the *in-process* backend -- single device, 2-replica data parallel,
and as an experiment-parallel trial -- and the resulting Dice scores are
printed and asserted equal (sharding at fixed global batch is exact).
"""

from conftest import once

from repro.core import ExperimentSettings, MISPipeline, train_trial

CONFIG = {"learning_rate": 3e-3, "loss": "dice"}


def _make(batch_per_replica):
    return ExperimentSettings(
        num_subjects=12, volume_shape=(16, 16, 16), epochs=22,
        base_filters=4, depth=2, seed=1, use_batchnorm=False,
        scale_learning_rate=False, batch_per_replica=batch_per_replica,
    )


def _run_all():
    s_b4 = _make(4)
    s_b2 = _make(2)
    pipeline = MISPipeline(s_b4)
    single = train_trial(CONFIG, s_b4, pipeline, num_replicas=1)
    data_parallel = train_trial(CONFIG, s_b2, pipeline, num_replicas=2)
    experiment_trial = train_trial(CONFIG, s_b4, pipeline, num_replicas=1)
    return single, data_parallel, experiment_trial


def test_dice_invariance_across_deployments(benchmark):
    single, dp, ep = once(benchmark, _run_all)

    print("\n=== Section IV-C: Dice invariance across deployments ===")
    print(f"{'deployment':<28} {'val DSC':>8} {'test DSC':>9}")
    for name, out in (
        ("single device", single),
        ("data parallel (2 GPUs)", dp),
        ("experiment-parallel trial", ep),
    ):
        print(f"{name:<28} {out.val_dice:>8.4f} {out.test_dice:>9.4f}")
    print("(paper: DSC ~0.89 for every configuration of the pipeline)")

    assert abs(single.val_dice - dp.val_dice) < 1e-9
    assert abs(single.test_dice - dp.test_dice) < 1e-9
    assert abs(single.val_dice - ep.val_dice) < 1e-9
    # the task is genuinely learned, not trivially scored
    assert single.val_dice > 0.8
