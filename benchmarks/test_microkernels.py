"""Micro-benchmarks of the hot kernels (real multi-round timing).

Not a paper artefact; establishes the compute substrate's throughput so
regressions in the NumPy kernels are visible: conv3d forward/backward,
the exact ring all-reduce, record serialisation and the Dice loss.
"""

import numpy as np
import pytest

from repro.cluster import ring_allreduce
from repro.data import decode_example, encode_example
from repro.nn import SoftDiceLoss, UNet3D
from repro.nn.functional import conv3d_backward, conv3d_forward

rng = np.random.default_rng(0)


@pytest.fixture(scope="module")
def conv_tensors():
    x = rng.normal(size=(2, 8, 24, 24, 16))
    w = rng.normal(size=(16, 8, 3, 3, 3))
    b = rng.normal(size=16)
    return x, w, b


def test_conv3d_forward_kernel(benchmark, conv_tensors):
    x, w, b = conv_tensors
    y = benchmark(conv3d_forward, x, w, b, 1, 1)
    assert y.shape == (2, 16, 24, 24, 16)


def test_conv3d_backward_kernel(benchmark, conv_tensors):
    x, w, b = conv_tensors
    dy = rng.normal(size=(2, 16, 24, 24, 16))
    dx, dw, db = benchmark(conv3d_backward, dy, x, w, 1, 1)
    assert dx.shape == x.shape


def test_unet_train_step_kernel(benchmark):
    net = UNet3D(4, 1, 4, 3, rng=np.random.default_rng(0))
    loss = SoftDiceLoss()
    x = rng.normal(size=(2, 4, 24, 24, 16))
    t = (rng.uniform(size=(2, 1, 24, 24, 16)) > 0.9).astype(float)

    def step():
        net.zero_grad()
        pred = net(x)
        _, dpred = loss.forward(pred, t)
        net.backward(dpred)
        return pred

    pred = benchmark(step)
    assert pred.shape == t.shape


def test_ring_allreduce_kernel(benchmark):
    """Gradient-sized buffers (406,793 params) over 4 replicas."""
    bufs = [rng.normal(size=406_793) for _ in range(4)]
    out = benchmark(ring_allreduce, bufs)
    np.testing.assert_allclose(out[0][:5], sum(bufs)[:5])


def test_example_encode_kernel(benchmark):
    ex = {
        "image": rng.normal(size=(4, 24, 24, 16)).astype(np.float32),
        "mask": (rng.uniform(size=(1, 24, 24, 16)) > 0.9).astype(np.float32),
    }
    payload = benchmark(encode_example, ex)
    assert decode_example(payload)["image"].shape == (4, 24, 24, 16)


def test_dice_loss_kernel(benchmark):
    pred = rng.uniform(size=(2, 1, 48, 48, 32))
    target = (rng.uniform(size=pred.shape) > 0.95).astype(float)
    loss_fn = SoftDiceLoss()
    loss, grad = benchmark(loss_fn.forward, pred, target)
    assert 0 <= loss <= 1
