"""E16 -- true multi-core experiment parallelism (claim C1, executed).

The paper's central argument is that experiment parallelism scales
because trials are self-contained.  The simulator prices that claim at
MareNostrum scale; this benchmark *executes* it at laptop scale: the
same 4-trial grid runs once on the serial in-process executor and once
on a 4-worker process pool, and the report pins

* correctness -- per-trial metrics (full per-epoch history included)
  are bit-identical between the two executors, and
* performance -- on a host with >= 4 usable cores the pool finishes the
  search at least 2x faster than the serial pass (trials are
  embarrassingly parallel; the remaining gap is fork + shared-memory
  setup and result streaming).

A machine-readable summary lands in ``BENCH_parallel.json`` next to
this file.  ``DISTMIS_BENCH_SMOKE=1`` shrinks the trial budget so the
benchmark doubles as a smoke test on tiny hosts (the speedup assertion
is skipped below 4 cores either way; the bit-identity assertion always
runs).
"""

import json
import os
import time

from repro.core import ExperimentSettings, HyperparameterSpace
from repro.core.experiment_parallel import run_search_inprocess
from repro.perf.regression import (
    bench_output_path,
    host_metadata,
    is_smoke_env,
)
from repro.telemetry import TelemetryHub

SMOKE = is_smoke_env()
WORKERS = 4
# Smoke runs are quarantined onto BENCH_parallel_smoke.json so they can
# never overwrite the committed trajectory point.
OUT = bench_output_path(__file__, "parallel", smoke=SMOKE)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _settings() -> ExperimentSettings:
    if SMOKE:
        return ExperimentSettings(num_subjects=6, volume_shape=(8, 8, 8),
                                  epochs=2, base_filters=2, depth=2, seed=0)
    return ExperimentSettings(num_subjects=10, volume_shape=(16, 16, 16),
                              epochs=4, base_filters=4, depth=2, seed=0)


def _space() -> HyperparameterSpace:
    return HyperparameterSpace(axes={
        "learning_rate": [1e-2, 1e-3],
        "loss": ["dice", "bce"],
    })


def _rows(result):
    """Canonical per-trial fingerprint: config + finals + full history."""
    return sorted(
        (
            tuple(sorted(o.config.items())),
            o.val_dice,
            o.test_dice,
            tuple((r.train_loss, r.val_dice) for r in o.history),
        )
        for o in result.outcomes
    )


def test_process_pool_speedup():
    import pytest

    settings = _settings()
    space = _space()
    cores = _usable_cores()

    t0 = time.perf_counter()
    serial = run_search_inprocess(space, settings)
    serial_s = time.perf_counter() - t0

    hub = TelemetryHub()
    t0 = time.perf_counter()
    proc = run_search_inprocess(space, settings, telemetry=hub,
                                executor="process", max_workers=WORKERS)
    process_s = time.perf_counter() - t0

    # -- correctness: bit-identical per-trial metrics ----------------------
    assert _rows(serial) == _rows(proc), (
        "process executor diverged from serial metrics")

    # -- worker RSS sanity: attached shared memory, not per-worker copies --
    rss = {
        s["labels"]["worker"]: s["value"]
        for s in hub.metrics.samples()
        if s["name"] == "execpool_worker_rss_kb"
    }
    shared = [s["value"] for s in hub.metrics.samples()
              if s["name"] == "execpool_shared_dataset_bytes"]
    assert rss, "workers reported no RSS stats"
    assert all(v > 0 for v in rss.values())
    # every worker stays within a sane multiple of the parent: a worker
    # holding private dataset copies per trial would blow well past this
    parent_rss_kb = max(rss.values())
    assert parent_rss_kb < 4 * 1024 * 1024  # < 4 GiB, laptop scale

    speedup = serial_s / process_s if process_s > 0 else float("inf")
    summary = {
        "benchmark": "process_parallel_speedup",
        "smoke": SMOKE,
        "usable_cores": cores,
        "workers": WORKERS,
        "num_trials": 4,
        "epochs": settings.epochs,
        "volume_shape": list(settings.volume_shape),
        "serial_seconds": round(serial_s, 4),
        "process_seconds": round(process_s, 4),
        "speedup": round(speedup, 3),
        "bit_identical": True,
        "shared_dataset_bytes": shared[0] if shared else None,
        "worker_max_rss_kb": rss,
        "host": host_metadata(),
    }
    OUT.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\nserial {serial_s:.2f}s  process[{WORKERS}w] {process_s:.2f}s  "
          f"speedup {speedup:.2f}x on {cores} cores -> {OUT.name}")

    # -- performance: only meaningful with real parallel hardware ----------
    if cores < WORKERS:
        pytest.skip(
            f"{cores} usable core(s) < {WORKERS}: bit-identity verified, "
            "speedup assertion needs >= 4 cores")
    assert speedup >= 2.0, (
        f"expected >= 2x speedup with {WORKERS} workers on {cores} cores, "
        f"got {speedup:.2f}x (serial {serial_s:.2f}s, "
        f"process {process_s:.2f}s)")
