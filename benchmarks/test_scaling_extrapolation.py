"""E15 -- extrapolating past the paper's 32 GPUs (extension).

The paper stops at 32 of MareNostrum-CTE's 208 GPUs.  The calibrated
model prices the rest of the machine and the structure is stark:

* data parallelism *peaks* around 64 GPUs and then collapses -- with a
  global batch of 2n against 338 training volumes, epochs degenerate to
  a single quantisation-dominated step while the max-of-n barrier and
  52 nodes' startup keep growing;
* experiment parallelism saturates at ~x15: once every trial has a GPU,
  extra GPUs only idle (the longest trial is the floor);
* the hybrid configuration keeps scaling -- 16-GPU trials on the full
  machine reach ~x60.

These are model *predictions* (nothing past 32 GPUs was calibrated),
but they follow from the same accounting that reproduces Table I.
"""

from conftest import once

from repro.cluster.resources import marenostrum_cte
from repro.core.hybrid import best_gpus_per_trial
from repro.perf import (
    StepCostModel,
    data_parallel_search_time,
    experiment_parallel_search_time,
    paper_search_grid,
)
from repro.perf.calibration import MARENOSTRUM_CTE_PROFILE

GPU_COUNTS = (32, 64, 128, 208)


def _sweep():
    model = StepCostModel(params=MARENOSTRUM_CTE_PROFILE,
                          cluster=marenostrum_cte(52))  # the full machine
    grid = paper_search_grid()
    dp1 = data_parallel_search_time(model, grid, 1)
    ep1 = experiment_parallel_search_time(model, grid, 1)
    curves = {}
    for n in GPU_COUNTS:
        curves[n] = (
            dp1 / data_parallel_search_time(model, grid, n),
            ep1 / experiment_parallel_search_time(model, grid, n),
        )
    hybrid = best_gpus_per_trial(grid, model, 208,
                                 candidates=(1, 2, 4, 8, 16, 32))
    hybrid_speedups = {
        g: ep1 / r.elapsed_seconds for g, r in hybrid.items()
    }
    return curves, hybrid_speedups


def test_scaling_beyond_the_paper(benchmark):
    curves, hybrid = once(benchmark, _sweep)

    print("\n=== E15: extrapolation to the full 208-GPU machine ===")
    print(f"{'#GPUs':>6} {'dp speed-up':>12} {'ep speed-up':>12}")
    for n, (dp, ep) in curves.items():
        print(f"{n:>6} {dp:>12.2f} {ep:>12.2f}")
    print("\nhybrid at 208 GPUs (speed-up vs 1 GPU):")
    for g, s in hybrid.items():
        print(f"  {g:>2} GPUs/trial -> x{s:.2f}")

    # data parallelism peaks then collapses
    dp_vals = [curves[n][0] for n in GPU_COUNTS]
    assert dp_vals[1] > dp_vals[0]          # still improving at 64
    assert dp_vals[3] < dp_vals[1] * 0.7    # collapsed by 208
    # experiment parallelism saturates near its makespan floor
    ep_vals = [curves[n][1] for n in GPU_COUNTS]
    assert max(ep_vals) - min(ep_vals) < 1.5
    # hybrid blows past both at full-machine scale
    best_hybrid = max(hybrid.values())
    assert best_hybrid > 3 * max(ep_vals)
    best_g = max(hybrid, key=hybrid.get)
    assert 4 <= best_g <= 32
