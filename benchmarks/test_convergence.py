"""E7 -- Section IV-B: training converges well before the epoch budget.

The paper trains 250 epochs but observes training and validation
stabilise around epoch 90 (~36% of the budget).  The in-process backend
reproduces the phenomenon at reduced scale: convergence is detected at
a fraction of the epoch budget, and the simulated backend prices how
much of Table I's wall-clock an early-stopped budget would save.
"""

from conftest import once

from repro.core import train_trial
from repro.perf import TrialConfig, calibrated_model

PAPER_BUDGET = 250
PAPER_CONVERGENCE = 90


def _train(settings, pipeline):
    return train_trial(
        {"learning_rate": 3e-3, "loss": "dice"},
        settings, pipeline, num_replicas=1,
        convergence_patience=4, convergence_tol=5e-3,
    )


def test_convergence_before_budget(benchmark, learn_settings, learn_pipeline):
    out = once(benchmark, _train, learn_settings, learn_pipeline)

    budget = learn_settings.epochs
    conv = out.converged_epoch
    print("\n=== Section IV-B: convergence vs epoch budget ===")
    print(f"epoch budget            : {budget} (paper: {PAPER_BUDGET})")
    print(f"converged at epoch      : {conv} "
          f"(paper: ~{PAPER_CONVERGENCE})")
    print(f"fraction of budget used : {conv / budget:.2f} "
          f"(paper: {PAPER_CONVERGENCE / PAPER_BUDGET:.2f})")
    print("val dice trajectory     : "
          + " ".join(f"{r.val_dice:.2f}" for r in out.history))

    assert conv is not None, "no convergence detected within the budget"
    assert conv < budget
    assert out.val_dice > 0.8

    # simulated savings if the budget were cut at the convergence point
    model = calibrated_model()
    full = model.trial_time(TrialConfig(epochs=PAPER_BUDGET), 1)
    early = model.trial_time(TrialConfig(epochs=PAPER_CONVERGENCE + 20), 1)
    print(f"simulated paper-scale trial: full budget {full/3600:.2f} h, "
          f"stop at epoch {PAPER_CONVERGENCE + 20}: {early/3600:.2f} h "
          f"({100 * (1 - early / full):.0f}% saved)")
    assert early < full * 0.5
