"""E2/E3 -- Figure 4: mean elapsed time (with min/max bars) and mean
speed-up per GPU count, both methods, three jittered runs each (the
paper ran every execution three times and reports the average).
"""

from conftest import once

from repro.core import DistMISRunner
from repro.perf import TABLE1_DP_SPEEDUPS, TABLE1_EP_SPEEDUPS


def _run_comparison():
    return DistMISRunner().simulate_comparison(
        gpu_counts=(1, 2, 4, 8, 12, 16, 32), num_runs=3, base_seed=0
    )


def _ascii_series(values, width=40):
    """Cheap terminal bar chart for the figure series."""
    top = max(values)
    return [
        "#" * max(1, int(round(width * v / top))) for v in values
    ]


def test_fig4_elapsed_and_speedup(benchmark):
    report = once(benchmark, _run_comparison)

    print("\n=== Fig 4a: mean elapsed hours per #GPUs (min..max of 3 runs) ===")
    for series in (report.dp, report.ep):
        means = series.mean()
        mins, maxs = series.minimum(), series.maximum()
        print(f"-- {series.method}")
        for n, m, lo, hi, bar in zip(
            series.gpu_counts, means, mins, maxs, _ascii_series(means)
        ):
            print(f"  {n:>3} GPUs  {m/3600:6.2f} h "
                  f"[{lo/3600:6.2f} .. {hi/3600:6.2f}]  {bar}")

    print("\n=== Fig 4b: mean speed-up per #GPUs ===")
    paper = {"data_parallel": TABLE1_DP_SPEEDUPS,
             "experiment_parallel": TABLE1_EP_SPEEDUPS}
    for series in (report.dp, report.ep):
        sp = series.speedups()
        print(f"-- {series.method}")
        for n, s in zip(series.gpu_counts, sp):
            print(f"  {n:>3} GPUs  x{s:5.2f}   (paper x{paper[series.method][n]:5.2f})")

    # --- shape assertions -------------------------------------------------
    # Fig 4a: time monotonically decreases; error bars bracket the mean.
    for series in (report.dp, report.ep):
        means = series.mean()
        assert all(a > b for a, b in zip(means, means[1:]))
        for lo, m, hi in zip(series.minimum(), means, series.maximum()):
            assert lo <= m <= hi

    # Fig 4b: experiment parallel above data parallel, gap widens.
    gaps = dict(report.crossover_gap())
    assert all(g > 0 for n, g in gaps.items() if n > 1)
    assert gaps[32] == max(g for n, g in gaps.items())

    # Speed-ups within 20% of the paper's curve (3-run averages jitter).
    for series, target in ((report.dp, TABLE1_DP_SPEEDUPS),
                           (report.ep, TABLE1_EP_SPEEDUPS)):
        for n, s in zip(series.gpu_counts, series.speedups()):
            assert abs(s / target[n] - 1) < 0.20, (series.method, n)
