"""E14 -- hybrid parallelism: multi-GPU trials under Tune placement.

Beyond the paper's two extremes.  At 32 GPUs the paper's
experiment-parallel method leaves 12 of 32 GPUs idle (20 trials, one
GPU each) and its makespan is pinned to the longest trial; the
data-parallel method keeps all GPUs busy but pays synchronisation on
every step.  Giving each trial an intermediate ``g`` GPUs interpolates
-- and the sweep shows a strict interior optimum, i.e. the *best*
configuration of the paper's own search is one it never ran.
"""

from conftest import once

from repro.core.hybrid import best_gpus_per_trial
from repro.perf import calibrated_model, format_hms, paper_search_grid

GPUS = 32


def _sweep():
    return best_gpus_per_trial(paper_search_grid(), calibrated_model(), GPUS)


def test_hybrid_sweep(benchmark):
    results = once(benchmark, _sweep)

    print(f"\n=== E14: hybrid parallelism at {GPUS} GPUs "
          "(20-trial search) ===")
    print(f"{'GPUs/trial':>10} {'slots':>6} {'elapsed':>9} {'GPU util':>9}")
    for g, r in sorted(results.items()):
        marker = ""
        if g == 1:
            marker = "  <- paper's experiment parallel"
        elif g == GPUS:
            marker = "  <- paper's data parallel"
        print(f"{g:>10} {r.concurrent_slots:>6} "
              f"{format_hms(r.elapsed_seconds):>9} "
              f"{r.mean_gpu_utilization:>8.0%}{marker}")

    ep = results[1].elapsed_seconds
    dp = results[GPUS].elapsed_seconds
    best_g = min(results, key=lambda g: results[g].elapsed_seconds)
    best = results[best_g].elapsed_seconds
    print(f"\nbest: {best_g} GPUs/trial at {format_hms(best)} "
          f"({100 * (1 - best / ep):.0f}% under experiment parallel, "
          f"{100 * (1 - best / dp):.0f}% under data parallel)")

    # The extremes recover the paper's two methods' ordering...
    assert ep < dp
    # ...and an interior configuration beats both.
    assert 1 < best_g < GPUS
    assert best < ep < dp
    # Utilisation is monotone in g (bigger trials, denser packing)...
    utils = [results[g].mean_gpu_utilization for g in sorted(results)]
    assert all(a <= b + 1e-9 for a, b in zip(utils, utils[1:]))
    # ...but elapsed time is NOT: utilisation is the wrong objective.
    assert results[GPUS].mean_gpu_utilization == max(utils)
    assert results[GPUS].elapsed_seconds > best
