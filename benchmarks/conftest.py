"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduction next to the paper's reported values.  Heavy
computations run once via ``benchmark.pedantic(rounds=1)`` -- the goal
is regeneration, not statistical micro-timing (micro-kernels get real
multi-round treatment in test_microkernels.py).

BLAS threading is pinned *before* NumPy loads: kernel-speedup numbers
(BENCH_kernels.json) are only comparable across machines and runs when
the GEMM thread count is a recorded constant rather than whatever the
container happens to expose.
"""

import os

os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

import pytest  # noqa: E402

from repro.core import ExperimentSettings, MISPipeline  # noqa: E402


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def learn_settings():
    """Shared laptop-scale training scale for the in-process benches."""
    return ExperimentSettings(
        num_subjects=10, volume_shape=(16, 16, 16), epochs=20,
        base_filters=4, depth=2, seed=1,
    )


@pytest.fixture(scope="session")
def learn_pipeline(learn_settings, tmp_path_factory):
    return MISPipeline(
        learn_settings, record_dir=tmp_path_factory.mktemp("bench_records")
    )
