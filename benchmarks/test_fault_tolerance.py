"""E13 -- fault tolerance under the two distribution methods.

An extension of the paper's §IV-C "self-contained runs" argument: a GPU
failure during a *data-parallel* step stalls the whole allocation (the
synchronous all-reduce needs every replica), so the effective mean time
between failures for the search is MTBF / n.  Under *experiment
parallelism* a failure takes down exactly one trial, which restarts
(from its last checkpoint) while the other 31 GPUs keep working.

The experiment-parallel side runs on the failure-injecting event
simulator; the data-parallel side uses the renewal-theory slowdown for
a single synchronous task with n-fold failure rate.
"""

from conftest import once

from repro.cluster.failures import FailureModel, expected_slowdown, run_with_failures
from repro.perf import calibrated_model, paper_search_grid

GPUS = 32
MTBF_HOURS = (48.0, 24.0, 12.0)
REPAIR_S = 600.0


def _sweep():
    model = calibrated_model()
    grid = paper_search_grid()
    durations = [model.trial_time(c, 1) for c in grid]
    dp_trials = [model.trial_time(c, GPUS) for c in grid]

    out = {}
    for mtbf_h in MTBF_HOURS:
        mtbf = mtbf_h * 3600.0
        # Experiment parallel: per-GPU failures, per-epoch checkpoints
        # (~0.96 of an interrupted trial's work survives).
        ep_model = FailureModel(mtbf_s=mtbf, repair_s=REPAIR_S,
                                checkpoint_fraction=0.96)
        ep = run_with_failures(durations, GPUS, ep_model, seed=1)
        # Data parallel: whole-allocation coupling -> any of the n GPUs
        # failing stalls the synchronous step, so the search runs at an
        # effective MTBF of mtbf / n.  Per-epoch checkpoints split each
        # trial into restartable segments of 4% of its length; renewal
        # theory prices each segment, so
        #   E[T] = t * expected_slowdown(segment, model).
        dp_model = FailureModel(mtbf_s=mtbf / GPUS, repair_s=REPAIR_S)
        dp_healthy = sum(dp_trials)
        dp_time = sum(
            t * expected_slowdown(max(t * (1 - 0.96), 1.0), dp_model)
            for t in dp_trials
        )
        out[mtbf_h] = {
            "ep_makespan": ep.makespan,
            "ep_failures": ep.num_failures,
            "ep_wasted": ep.wasted_seconds,
            "dp_time": dp_time,
            "dp_healthy": dp_healthy,
        }
    healthy_ep = run_with_failures(
        durations, GPUS, FailureModel(mtbf_s=1e15), seed=1
    ).makespan
    return out, healthy_ep


def test_fault_tolerance_comparison(benchmark):
    result, healthy_ep = once(benchmark, _sweep)

    print("\n=== E13: failure sensitivity at 32 GPUs "
          "(per-epoch checkpoints, 10 min repair) ===")
    print(f"{'MTBF/GPU':>9} {'ep makespan h':>14} {'ep fails':>9} "
          f"{'ep overhead':>12} {'dp overhead':>12}")
    for mtbf_h, row in result.items():
        ep_over = row["ep_makespan"] / healthy_ep - 1
        dp_over = row["dp_time"] / row["dp_healthy"] - 1
        print(f"{mtbf_h:>7.0f}h {row['ep_makespan']/3600:>14.2f} "
              f"{row['ep_failures']:>9} {100*ep_over:>11.1f}% "
              f"{100*dp_over:>11.1f}%")

    for mtbf_h, row in result.items():
        ep_over = row["ep_makespan"] / healthy_ep - 1
        dp_over = row["dp_time"] / row["dp_healthy"] - 1
        # the self-contained method degrades more gracefully
        assert dp_over >= ep_over - 0.01, mtbf_h
    # shorter MTBF, more failures
    fails = [row["ep_failures"] for row in result.values()]
    assert fails[-1] >= fails[0]
