"""E9/E10 -- ablations over the simulated design space.

Not tables from the paper; these sweep the design choices DESIGN.md
calls out, answering "why does the Table I gap look like this?":

* node size M (GPUs per node) -- how much of data parallel's overhead
  is the inter-node boundary;
* interconnect bandwidth -- InfiniBand vs 10GbE;
* straggler jitter sigma -- the dominant fitted overhead;
* scheduler policy -- Ray Tune FIFO vs LPT for experiment parallelism;
* ASHA early stopping -- what adaptive scheduling would add on top;
* (E10) pipeline/model parallelism -- the paper's future-work sketch.
"""

import math

from conftest import once

from repro.cluster import (
    ETHERNET_10G,
    INFINIBAND_EDR,
    NVLINK2,
    V100_16GB,
    ClusterSpec,
    NodeSpec,
    POWER9_NODE,
)
from repro.cluster.modelparallel import plan_pipeline_parallel
from repro.perf import (
    MARENOSTRUM_CTE_PROFILE,
    PAPER_SPATIAL,
    StepCostModel,
    TrialConfig,
    calibrated_model,
    data_parallel_search_time,
    experiment_parallel_search_time,
    paper_search_grid,
    unet3d_forward_flops,
)


def _speedup32(model, grid, method):
    fn = (data_parallel_search_time if method == "dp"
          else experiment_parallel_search_time)
    return fn(model, grid, 1) / fn(model, grid, 32)


class TestClusterAblations:
    def test_node_size_sweep(self, benchmark):
        """Bigger nodes keep more of the all-reduce on NVLink."""
        grid = paper_search_grid()

        def sweep():
            out = {}
            for m in (2, 4, 8, 16):
                node = NodeSpec(
                    name=f"node{m}", num_gpus=m, gpu=V100_16GB,
                    cpu_cores=40, cpu_ghz=2.4,
                    host_memory_bytes=POWER9_NODE.host_memory_bytes,
                )
                spec = ClusterSpec(num_nodes=math.ceil(32 / m), node=node)
                model = StepCostModel(params=MARENOSTRUM_CTE_PROFILE,
                                      cluster=spec)
                out[m] = _speedup32(model, grid, "dp")
            return out

        result = once(benchmark, sweep)
        print("\n=== E9a: data-parallel 32-GPU speed-up vs node size M ===")
        for m, s in result.items():
            print(f"  M={m:>2} GPUs/node -> x{s:.2f}")
        # monotone: fewer node boundaries, better scaling
        vals = list(result.values())
        assert vals[-1] >= vals[0] - 0.05

    def test_interconnect_sweep(self, benchmark):
        grid = paper_search_grid()

        def sweep():
            out = {}
            for link in (INFINIBAND_EDR, ETHERNET_10G):
                spec = ClusterSpec(num_nodes=8, node=POWER9_NODE,
                                   inter_link=link)
                model = StepCostModel(params=MARENOSTRUM_CTE_PROFILE,
                                      cluster=spec)
                out[link.name] = (
                    _speedup32(model, grid, "dp"),
                    _speedup32(model, grid, "ep"),
                )
            return out

        result = once(benchmark, sweep)
        print("\n=== E9b: 32-GPU speed-up vs inter-node fabric ===")
        for name, (dp, ep) in result.items():
            print(f"  {name:<16} dp x{dp:.2f}   ep x{ep:.2f}")
        # experiment parallelism is fabric-insensitive; data parallelism
        # loses ground on the slow fabric.
        ib, eth = result[INFINIBAND_EDR.name], result[ETHERNET_10G.name]
        assert eth[0] <= ib[0] + 1e-9
        assert abs(eth[1] - ib[1]) < 0.2

    def test_straggler_sigma_sweep(self, benchmark):
        grid = paper_search_grid()

        def sweep():
            out = {}
            for sigma in (0.0, 0.1, 0.25, 0.4):
                params = MARENOSTRUM_CTE_PROFILE.with_overrides(
                    straggler_sigma=sigma
                )
                model = StepCostModel(params=params)
                out[sigma] = _speedup32(model, grid, "dp")
            return out

        result = once(benchmark, sweep)
        print("\n=== E9c: data-parallel 32-GPU speed-up vs jitter sigma ===")
        for sigma, s in result.items():
            print(f"  sigma={sigma:.2f} -> x{s:.2f}")
        vals = list(result.values())
        assert all(a >= b for a, b in zip(vals, vals[1:])), \
            "more jitter must hurt synchronous scaling"
        # Without jitter, only quantisation + collectives remain and the
        # curve moves far above the calibrated x13 -- jitter is the
        # dominant fitted overhead.
        assert vals[0] > 16

    def test_scheduler_policy(self, benchmark):
        grid = paper_search_grid()
        model = calibrated_model()

        def sweep():
            out = {}
            for n in (8, 12, 16, 32):
                fifo = experiment_parallel_search_time(model, grid, n,
                                                       policy="fifo")
                lpt = experiment_parallel_search_time(model, grid, n,
                                                      policy="lpt")
                out[n] = (fifo, lpt)
            return out

        result = once(benchmark, sweep)
        print("\n=== E9d: Ray Tune FIFO vs LPT makespan (hours) ===")
        for n, (fifo, lpt) in result.items():
            print(f"  {n:>2} GPUs: fifo {fifo/3600:6.2f}  lpt {lpt/3600:6.2f}")
        for fifo, lpt in result.values():
            assert lpt <= fifo + 1e-9


class TestDataDeployment:
    def test_deployment_strategies(self, benchmark):
        """E9e -- the Fig 1 'data deployment' stage: staging the ~79 GiB
        binarised cohort to node-local storage vs reading the shared FS
        every epoch; bounds why deployment is invisible in Table I."""
        from repro.perf import DatasetFootprint, plan_deployment, staging_time

        def sweep():
            fp = DatasetFootprint()
            out = {}
            for nodes in (1, 2, 4, 8):
                shared = plan_deployment(fp, nodes, INFINIBAND_EDR,
                                         strategy="shared_fs")
                staged = plan_deployment(fp, nodes, INFINIBAND_EDR,
                                         strategy="stage_to_nodes")
                out[nodes] = (
                    staging_time(fp, nodes, INFINIBAND_EDR),
                    shared.total_seconds(250),
                    staged.total_seconds(250),
                )
            return out

        result = once(benchmark, sweep)
        print("\n=== E9e: data deployment over 250 epochs (hours) ===")
        print(f"{'nodes':>5} {'stage once':>11} {'shared-FS run':>14} "
              f"{'staged run':>11}")
        for nodes, (stage, shared, staged) in result.items():
            print(f"{nodes:>5} {stage/3600:>11.2f} {shared/3600:>14.2f} "
                  f"{staged/3600:>11.2f}")
        for nodes, (stage, shared, staged) in result.items():
            assert staged < shared            # staging wins over a full run
            assert stage < 0.1 * 44 * 3600    # and is <10% of the search


class TestModelParallelFutureWork:
    def test_pipeline_parallel_sketch(self, benchmark):
        """E10 -- Section V-C: pipeline-split training unlocks batch > 2
        at the cost of bubbles + boundary traffic."""
        flops = 3 * unet3d_forward_flops() * 2  # fwd+bwd, batch 2

        def sweep():
            out = {}
            for stages in (1, 2, 4):
                out[stages] = plan_pipeline_parallel(
                    total_step_flops=flops,
                    spatial=PAPER_SPATIAL,
                    gpu=V100_16GB,
                    link=NVLINK2,
                    num_stages=stages,
                    batch_per_step=2,
                )
            return out

        plans = once(benchmark, sweep)
        print("\n=== E10: pipeline-parallel future-work sketch ===")
        print(f"{'stages':>6} {'step (s)':>9} {'bubble':>7} "
              f"{'mem/stage (GiB)':>16} {'max batch':>10}")
        for s, p in plans.items():
            print(f"{s:>6} {p.step_time_s:>9.3f} {p.bubble_fraction:>7.2f} "
                  f"{p.per_stage_memory_bytes/2**30:>16.2f} "
                  f"{p.max_feasible_batch:>10}")

        assert plans[1].bubble_fraction == 0.0
        # splitting raises the feasible batch (the motivation)...
        assert plans[4].max_feasible_batch > plans[1].max_feasible_batch
        # ...and lowers per-stage memory
        assert plans[4].per_stage_memory_bytes < plans[1].per_stage_memory_bytes
        # but costs bubble overhead per step
        assert plans[4].bubble_fraction > plans[2].bubble_fraction > 0
