"""E12 -- cost decomposition behind Table I's data-parallel curve.

Not a table in the paper; this regenerates the *explanation* the paper
gives in prose (Section IV-C: "using more [GPUs] implies a communication
overhead when distributing a single model across nodes ... every
parallel run is self-contained"): the per-category share of one trial's
wall-clock as GPUs scale.
"""

from conftest import once

from repro.perf import TrialConfig, calibrated_model, epoch_breakdown


def _sweep():
    model = calibrated_model()
    cfg = TrialConfig()
    return {
        n: epoch_breakdown(model, cfg, n).fractions()
        for n in (1, 2, 4, 8, 16, 32)
    }


def test_data_parallel_cost_breakdown(benchmark):
    result = once(benchmark, _sweep)

    cats = ["compute", "straggler_wait", "allreduce", "input",
            "framework", "validation", "fixed"]
    print("\n=== E12: where a data-parallel trial's time goes (%) ===")
    print(f"{'#GPUs':>5} " + " ".join(f"{c:>15}" for c in cats))
    for n, fr in result.items():
        print(f"{n:>5} " + " ".join(f"{100 * fr[c]:>15.1f}" for c in cats))

    # Compute share shrinks, synchronisation share grows -- the
    # structural reason experiment parallelism wins at scale.
    assert result[1]["compute"] > result[32]["compute"]
    assert result[32]["straggler_wait"] > result[2]["straggler_wait"]
    assert result[1]["straggler_wait"] == 0.0
    # At 32 GPUs a single trial is only ~10 simulated minutes, so the
    # per-node startup ("fixed") becomes a first-class cost alongside
    # the straggler wait -- compute drops to roughly a third.
    assert result[32]["compute"] > 0.25
    assert result[32]["fixed"] > result[2]["fixed"]
    for fr in result.values():
        assert abs(sum(fr.values()) - 1.0) < 1e-9
