"""E16 -- search-algorithm comparison on a synthetic quality landscape.

The paper uses exhaustive grid search (the cross-product of the
options).  This bench compares the provided alternatives -- random
search and the TPE-lite adaptive sampler -- on a synthetic quality
model shaped like the real problem (a learning-rate sweet spot, small
effects from the loss variant and width): how much of the landscape
each algorithm must evaluate to find a near-optimal configuration.
Synthetic landscape: an illustration of the framework's search stack,
not a paper claim.
"""

import numpy as np
from conftest import once

from repro.raysim import GridSearch, RandomSearch, TPELite, tune_run

SPACE = {
    "learning_rate": [1e-2, 5e-3, 1e-3, 5e-4, 1e-4, 5e-5, 1e-5, 5e-6],
    "loss": ["dice", "quadratic_dice"],
    "base_filters": [8, 11],
}
OPTIMUM = 0.89


def quality(config: dict, rng: np.random.Generator) -> float:
    lr = config["learning_rate"]
    q = OPTIMUM - 0.1 * abs(np.log10(lr) + 4.0)
    if config["loss"] == "quadratic_dice":
        q -= 0.01
    if config["base_filters"] == 11:
        q += 0.005
    return float(q + rng.normal(0, 0.003))


def _run_all():
    out = {}
    for name, alg in (
        ("grid (paper)", GridSearch(SPACE)),
        ("random-16", RandomSearch(SPACE, num_samples=16, seed=0)),
        ("tpe-16", TPELite(SPACE, num_samples=16, startup_trials=6, seed=0)),
    ):
        rng = np.random.default_rng(1)

        def trainable(config, reporter):
            reporter(val_dice=quality(config, rng))
            return None

        analysis = tune_run(trainable, alg, metric="val_dice")
        best = analysis.best_trial("val_dice")
        out[name] = {
            "trials": len(analysis.trials),
            "best": best.best_metric("val_dice"),
            "best_lr": best.config["learning_rate"],
        }
    return out


def test_search_algorithm_comparison(benchmark):
    results = once(benchmark, _run_all)

    print("\n=== E16: search algorithms on the synthetic landscape ===")
    print(f"{'algorithm':<14} {'trials':>7} {'best dice':>10} {'best lr':>9}")
    for name, r in results.items():
        print(f"{name:<14} {r['trials']:>7} {r['best']:>10.4f} "
              f"{r['best_lr']:>9.0e}")

    grid = results["grid (paper)"]
    assert grid["trials"] == 32
    assert grid["best_lr"] == 1e-4  # exhaustive search nails the optimum
    # The 16-trial budgets land within a whisker of the exhaustive best.
    for name in ("random-16", "tpe-16"):
        assert results[name]["trials"] == 16
        assert results[name]["best"] > grid["best"] - 0.02
    # TPE's adaptive sampling should do at least as well as random here.
    assert results["tpe-16"]["best"] >= results["random-16"]["best"] - 0.01
